(* Tests for the observability layer: JSON documents, the metrics
   registry, trace sinks, and the Stats edge cases the registry leans
   on. *)

let approx = Alcotest.float 1e-9

let get_exn = function Some x -> x | None -> Alcotest.fail "missing JSON member"

let member_exn key json = get_exn (Jsonx.member key json)

(* --- Jsonx --- *)

let test_jsonx_roundtrip () =
  let doc =
    Jsonx.Obj
      [
        ("name", Jsonx.String "line\n\"quoted\"\tand\\slashed");
        ("count", Jsonx.Int (-42));
        ("ratio", Jsonx.Float 0.125);
        ("flags", Jsonx.List [ Jsonx.Bool true; Jsonx.Bool false; Jsonx.Null ]);
        ("nested", Jsonx.Obj [ ("k", Jsonx.Int 7) ]);
      ]
  in
  let back = Jsonx.of_string (Jsonx.to_string doc) in
  Alcotest.(check bool) "identical after round-trip" true (back = doc)

let test_jsonx_special_floats () =
  Alcotest.(check string) "nan is null" "null" (Jsonx.to_string (Jsonx.Float nan));
  let inf = Jsonx.of_string (Jsonx.to_string (Jsonx.Float infinity)) in
  Alcotest.(check bool) "infinity survives" true (Jsonx.to_float inf = Some infinity)

let test_jsonx_rejects_garbage () =
  let bad s =
    match Jsonx.of_string s with
    | exception Jsonx.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "qos")

let test_jsonx_bad_unicode_escape () =
  (* Regression: the \u handler used to catch every exception around
     int_of_string; it now narrows to Failure. Malformed hex digits
     must still surface as Parse_error, not escape as something else. *)
  let bad s =
    match Jsonx.of_string s with
    | exception Jsonx.Parse_error _ -> true
    | exception _ -> false
    | _ -> false
  in
  Alcotest.(check bool) "non-hex digits" true (bad "\"\\uZZZZ\"");
  Alcotest.(check bool) "truncated escape" true (bad "\"\\u12\"");
  (* And a well-formed escape still parses. *)
  Alcotest.(check bool) "valid escape accepted" true
    (match Jsonx.of_string "\"\\u0041\"" with
    | Jsonx.String s -> s = "A"
    | _ -> false)

(* --- Jsonx.fold_lines --- *)

let fold_string text =
  let path = Filename.temp_file "drqos_jsonl" ".jsonl" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  let ic = open_in path in
  let result =
    match
      Jsonx.fold_lines ic ~init:[] ~f:(fun acc ~line doc -> (line, doc) :: acc)
    with
    | docs -> Ok (List.rev docs)
    | exception Jsonx.Line_error { line; message } -> Error (line, message)
  in
  close_in ic;
  Sys.remove path;
  result

let test_fold_lines_good () =
  match fold_string "{\"a\":1}\n\n  \n{\"b\":2}\n" with
  | Error _ -> Alcotest.fail "good stream rejected"
  | Ok docs ->
    Alcotest.(check (list int)) "line numbers skip blanks" [ 1; 4 ]
      (List.map fst docs);
    Alcotest.(check bool) "documents parsed" true
      (List.map snd docs
      = [ Jsonx.Obj [ ("a", Jsonx.Int 1) ]; Jsonx.Obj [ ("b", Jsonx.Int 2) ] ])

let test_fold_lines_truncated () =
  (* A crash mid-write leaves a truncated final line; the reader must
     name it rather than silently dropping data. *)
  match fold_string "{\"a\":1}\n{\"b\": 2, \"c\"" with
  | Ok _ -> Alcotest.fail "truncated final line accepted"
  | Error (line, _) -> Alcotest.(check int) "error names line 2" 2 line

let test_fold_lines_garbage_line () =
  match fold_string "{\"a\":1}\nnot json at all\n{\"b\":2}\n" with
  | Ok _ -> Alcotest.fail "garbage line accepted"
  | Error (line, message) ->
    Alcotest.(check int) "error names line 2" 2 line;
    Alcotest.(check bool) "message is non-empty" true (String.length message > 0)

let test_fold_lines_empty_stream () =
  match fold_string "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "phantom documents"
  | Error _ -> Alcotest.fail "empty stream rejected"

(* --- Metrics registry --- *)

let test_metrics_counters_and_snapshot () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "events" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  Alcotest.(check int) "counter value" 42 (Metrics.count c);
  Alcotest.(check bool) "interned by name" true (Metrics.counter reg "events" == c);
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 3.;
  Metrics.set g 10.;
  Metrics.set g 2.;
  let tm = Metrics.timer reg "solve" in
  Metrics.observe tm 0.5;
  Metrics.observe tm 1.5;
  let snap = Metrics.snapshot reg in
  (* The snapshot must survive a JSON round-trip and expose the values. *)
  let snap = Jsonx.of_string (Jsonx.to_string snap) in
  let counters = member_exn "counters" snap in
  Alcotest.(check int) "snapshot counter" 42
    (get_exn (Jsonx.to_int (member_exn "events" counters)));
  let depth = member_exn "depth" (member_exn "gauges" snap) in
  Alcotest.check approx "gauge last" 2.
    (get_exn (Jsonx.to_float (member_exn "value" depth)));
  Alcotest.check approx "gauge peak" 10.
    (get_exn (Jsonx.to_float (member_exn "peak" depth)));
  let solve = member_exn "solve" (member_exn "timers" snap) in
  Alcotest.(check int) "timer count" 2
    (get_exn (Jsonx.to_int (member_exn "count" solve)));
  Alcotest.check approx "timer total" 2.
    (get_exn (Jsonx.to_float (member_exn "total_s" solve)));
  Alcotest.check approx "timer mean" 1.
    (get_exn (Jsonx.to_float (member_exn "mean_s" solve)))

let test_metrics_disabled_is_noop () =
  let c = Metrics.counter Metrics.disabled "never" in
  Metrics.incr c;
  Metrics.add c 10;
  Alcotest.(check int) "disabled counter stays 0" 0 (Metrics.count c);
  let g = Metrics.gauge Metrics.disabled "never_g" in
  Metrics.set g 5.;
  Alcotest.check approx "disabled gauge stays 0" 0. (Metrics.value g);
  let tm = Metrics.timer Metrics.disabled "never_t" in
  let ran = Metrics.time tm (fun () -> 123) in
  Alcotest.(check int) "thunk still runs" 123 ran;
  Alcotest.(check int) "disabled timer records nothing" 0 (Metrics.timer_count tm);
  Alcotest.(check bool) "cannot enable the shared registry" true
    (match Metrics.set_enabled Metrics.disabled true with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_metrics_toggle () =
  let reg = Metrics.create ~enabled:false () in
  let c = Metrics.counter reg "toggled" in
  Metrics.incr c;
  Metrics.set_enabled reg true;
  Metrics.incr c;
  Alcotest.(check int) "only counted while enabled" 1 (Metrics.count c)

(* --- timer percentiles --- *)

(* The log-bucket histogram has ~12% relative resolution, so quantile
   answers must land within that of the exact value — deterministically,
   with no sampling seed. *)
let check_rel name expected actual =
  let rel = Float.abs (actual -. expected) /. expected in
  if rel > 0.15 then
    Alcotest.failf "%s: expected ~%g, got %g (rel. error %.2f)" name expected
      actual rel

let test_timer_percentiles () =
  let reg = Metrics.create () in
  let tm = Metrics.timer reg "lat" in
  (* 100 observations: 1 ms .. 100 ms. *)
  for i = 1 to 100 do
    Metrics.observe tm (float_of_int i *. 1e-3)
  done;
  check_rel "p50" 0.050 (Metrics.timer_quantile tm 0.50);
  check_rel "p95" 0.095 (Metrics.timer_quantile tm 0.95);
  check_rel "p99" 0.099 (Metrics.timer_quantile tm 0.99);
  Alcotest.(check bool) "q out of range rejected" true
    (match Metrics.timer_quantile tm 1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let empty = Metrics.timer reg "never" in
  Alcotest.check approx "empty timer quantile is 0" 0.
    (Metrics.timer_quantile empty 0.5)

let test_timer_percentiles_in_snapshot () =
  let reg = Metrics.create () in
  let tm = Metrics.timer reg "solve" in
  List.iter (Metrics.observe tm) [ 0.010; 0.010; 0.010; 0.500 ];
  let snap = Jsonx.of_string (Jsonx.to_string (Metrics.snapshot reg)) in
  let solve = member_exn "solve" (member_exn "timers" snap) in
  let q name = get_exn (Jsonx.to_float (member_exn name solve)) in
  check_rel "snapshot p50" 0.010 (q "p50_s");
  check_rel "snapshot p99" 0.500 (q "p99_s");
  Alcotest.(check bool) "p95 between p50 and p99" true
    (q "p50_s" <= q "p95_s" && q "p95_s" <= q "p99_s")

let test_timer_percentiles_merge () =
  (* Percentiles over merged registries must equal percentiles over the
     union of observations (bucket counts add exactly). *)
  let a = Metrics.create () and b = Metrics.create () in
  for i = 1 to 50 do
    Metrics.observe (Metrics.timer a "t") (float_of_int i *. 1e-3)
  done;
  for i = 51 to 100 do
    Metrics.observe (Metrics.timer b "t") (float_of_int i *. 1e-3)
  done;
  let whole = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe (Metrics.timer whole "t") (float_of_int i *. 1e-3)
  done;
  Metrics.merge_into ~into:a b;
  let tm = Metrics.timer a "t" in
  Alcotest.(check int) "merged count" 100 (Metrics.timer_count tm);
  List.iter
    (fun q ->
      Alcotest.check approx
        (Printf.sprintf "merged q=%g equals unsplit" q)
        (Metrics.timer_quantile (Metrics.timer whole "t") q)
        (Metrics.timer_quantile tm q))
    [ 0.; 0.25; 0.5; 0.9; 0.95; 0.99; 1. ]

(* --- Trace sinks --- *)

let events_fixture =
  [
    (0., Trace.Admit { channel = 0; direct = 2; indirect = 5 });
    (1.5, Trace.Reject { reason = "no_backup_route" });
    (2.25, Trace.Retreat { channel = 0; from_level = 8; to_level = 0 });
    (2.25, Trace.Upgrade { channel = 3; from_level = 0; to_level = 1 });
    (3., Trace.Link_fail { edge = 17 });
    (3., Trace.Backup_activate { channel = 0; reprotected = true });
    (4., Trace.Solve { what = "ctmc.stationary"; states = 9; seconds = 0.001 });
  ]

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "drqos_trace" ".jsonl" in
  let tracer = Trace.create (Trace.jsonl_sink (open_out path)) in
  List.iter (fun (time, ev) -> Trace.emit tracer ~time ev) events_fixture;
  Trace.close tracer;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  Alcotest.(check int) "one line per event" (List.length events_fixture)
    (List.length lines);
  List.iter2
    (fun (time, ev) line ->
      let json = Jsonx.of_string line in
      Alcotest.(check string) "kind" (Trace.kind ev)
        (get_exn (Jsonx.to_str (member_exn "ev" json)));
      Alcotest.check approx "timestamp" time
        (get_exn (Jsonx.to_float (member_exn "t" json)));
      (* The parsed line must equal the direct serialisation. *)
      Alcotest.(check bool) "document round-trips" true
        (json = Jsonx.of_string (Jsonx.to_string (Trace.to_json ~time ev))))
    events_fixture lines;
  (* Spot-check one payload field survived the file round-trip. *)
  let activate = Jsonx.of_string (List.nth lines 5) in
  Alcotest.(check bool) "reprotected flag" true
    (Jsonx.member "reprotected" activate = Some (Jsonx.Bool true))

let test_disabled_tracer_emits_nothing () =
  let hit = ref 0 in
  let sink = { Trace.emit = (fun _ _ -> incr hit); close = (fun () -> ()) } in
  ignore sink.Trace.emit;
  Trace.emit Trace.disabled ~time:1. (Trace.Drop { channel = 1 });
  Alcotest.(check int) "no emission" 0 !hit

(* Every constructor must serialise and parse back: [Trace.all_samples]
   holds one sample per constructor, so adding a constructor without
   extending to_json/of_json (or the sample list) fails here. *)
let test_trace_serialisation_total () =
  let kinds = List.map Trace.kind Trace.all_samples in
  Alcotest.(check int) "one distinct kind per constructor"
    (List.length kinds)
    (List.length (List.sort_uniq compare kinds));
  List.iteri
    (fun i ev ->
      let time = 0.5 +. float_of_int i in
      let doc = Jsonx.of_string (Jsonx.to_string (Trace.to_json ~time ev)) in
      match Trace.of_json doc with
      | Error msg -> Alcotest.failf "%s does not parse back: %s" (Trace.kind ev) msg
      | Ok (time', ev') ->
        Alcotest.check approx (Trace.kind ev ^ " timestamp") time time';
        (* Structural equality covers every field of every constructor. *)
        if ev' <> ev then
          Alcotest.failf "%s fields changed across the round-trip:\n%s\nvs\n%s"
            (Trace.kind ev)
            (Jsonx.to_string (Trace.to_json ~time ev))
            (Jsonx.to_string (Trace.to_json ~time:time' ev')))
    Trace.all_samples

let test_trace_of_json_rejects () =
  let err doc =
    match Trace.of_json (Jsonx.of_string doc) with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "unknown kind" true
    (err "{\"t\":1.0,\"ev\":\"frobnicate\"}");
  Alcotest.(check bool) "missing field" true (err "{\"t\":1.0,\"ev\":\"admit\"}");
  Alcotest.(check bool) "ill-typed field" true
    (err "{\"t\":1.0,\"ev\":\"terminate\",\"channel\":\"three\"}");
  Alcotest.(check bool) "missing timestamp" true (err "{\"ev\":\"link_fail\",\"edge\":1}")

let test_tracer_close_idempotent () =
  let closes = ref 0 in
  let sink = { Trace.emit = (fun _ _ -> ()); close = (fun () -> incr closes) } in
  let tracer = Trace.create sink in
  Trace.close tracer;
  Trace.close tracer;
  Alcotest.(check int) "sink closed exactly once" 1 !closes

(* --- Span profiler --- *)

let test_span_nesting_and_self_time () =
  let sp = Span.create () in
  let outer = get_exn (Span.enter sp "outer") in
  let inner = get_exn (Span.enter sp "inner") in
  Alcotest.(check int) "inner depth" 1 (Span.depth sp - 1);
  let ri = get_exn (Span.exit sp inner) in
  let ro = get_exn (Span.exit sp outer) in
  Alcotest.(check string) "inner name" "inner" ri.Span.name;
  Alcotest.(check int) "inner depth recorded" 1 ri.Span.depth;
  Alcotest.(check int) "outer depth recorded" 0 ro.Span.depth;
  Alcotest.(check bool) "durations are non-negative" true
    (ri.Span.total_s >= 0. && ro.Span.total_s >= 0.);
  Alcotest.(check bool) "outer total covers inner" true
    (ro.Span.total_s >= ri.Span.total_s);
  Alcotest.(check bool) "outer self excludes inner" true
    (ro.Span.self_s <= ro.Span.total_s -. ri.Span.total_s +. 1e-9);
  Alcotest.(check int) "two records kept" 2 (List.length (Span.records sp));
  (* Completion order: inner closed first. *)
  (match Span.records sp with
  | [ a; b ] ->
    Alcotest.(check string) "inner completes first" "inner" a.Span.name;
    Alcotest.(check string) "outer completes last" "outer" b.Span.name
  | _ -> Alcotest.fail "expected exactly two records");
  match Span.aggregate sp with
  | aggs ->
    Alcotest.(check int) "two aggregate rows" 2 (List.length aggs);
    List.iter
      (fun a -> Alcotest.(check int) ("count of " ^ a.Span.agg_name) 1 a.Span.count)
      aggs

let test_span_exit_order_enforced () =
  let sp = Span.create () in
  let outer = get_exn (Span.enter sp "outer") in
  let _inner = get_exn (Span.enter sp "inner") in
  Alcotest.(check bool) "closing the outer frame first is rejected" true
    (match Span.exit sp outer with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_span_wrap_protects_on_raise () =
  let sp = Span.create () in
  (try Span.wrap sp "boom" (fun () -> failwith "kaboom") with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Span.depth sp);
  Alcotest.(check int) "the raising span still recorded" 1
    (List.length (Span.records sp))

let test_span_record_cap () =
  let sp = Span.create ~keep:3 () in
  for _ = 1 to 5 do
    Span.wrap sp "tick" (fun () -> ())
  done;
  Alcotest.(check int) "records capped" 3 (List.length (Span.records sp));
  Alcotest.(check int) "overflow counted" 2 (Span.dropped_records sp);
  match Span.aggregate sp with
  | [ a ] -> Alcotest.(check int) "aggregate sees every span" 5 a.Span.count
  | aggs -> Alcotest.failf "expected one aggregate row, got %d" (List.length aggs)

let test_span_merge () =
  let a = Span.create () and b = Span.create () in
  Span.wrap a "shared" (fun () -> ());
  Span.wrap b "shared" (fun () -> ());
  Span.wrap b "worker_only" (fun () -> ());
  Span.merge_into ~into:a b;
  let find name =
    List.find (fun x -> x.Span.agg_name = name) (Span.aggregate a)
  in
  Alcotest.(check int) "shared counts add" 2 (find "shared").Span.count;
  Alcotest.(check int) "worker-only arrives" 1 (find "worker_only").Span.count;
  Alcotest.(check bool) "self-merge rejected" true
    (match Span.merge_into ~into:a a with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* Merging into/from the disabled profiler is a silent no-op. *)
  Span.merge_into ~into:Span.disabled a;
  Span.merge_into ~into:a Span.disabled

(* --- Obs context --- *)

let test_obs_span_and_clock () =
  let events = ref [] in
  let sink =
    { Trace.emit = (fun time ev -> events := (time, ev) :: !events);
      close = (fun () -> ()) }
  in
  let obs = Obs.create ~metrics:(Metrics.create ()) ~trace:(Trace.create sink) () in
  Obs.set_clock obs (fun () -> 42.);
  let result = Obs.span obs "work" (fun () -> 7) in
  Alcotest.(check int) "span returns the thunk's value" 7 result;
  (match List.rev !events with
  | [ (t1, Trace.Phase_begin { name = n1 }); (t2, Trace.Phase_end { name = n2; _ }) ] ->
    Alcotest.(check string) "begin name" "work" n1;
    Alcotest.(check string) "end name" "work" n2;
    Alcotest.check approx "begin at clock" 42. t1;
    Alcotest.check approx "end at clock" 42. t2
  | evs -> Alcotest.failf "expected begin/end pair, got %d events" (List.length evs));
  let timers = Jsonx.member "timers" (Obs.metrics_json obs) in
  Alcotest.(check bool) "phase timer recorded" true
    (match timers with
    | Some (Jsonx.Obj fields) -> List.mem_assoc "phase.work" fields
    | _ -> false)

let test_obs_null_ignores_clock () =
  Obs.set_clock Obs.null (fun () -> 99.);
  Alcotest.check approx "null clock pinned at 0" 0. (Obs.now Obs.null)

let test_obs_profiled_span_emits_span_events () =
  let events = ref [] in
  let sink =
    { Trace.emit = (fun time ev -> events := (time, ev) :: !events);
      close = (fun () -> ()) }
  in
  let obs =
    Obs.create ~trace:(Trace.create sink) ~spans:(Span.create ()) ()
  in
  Alcotest.(check bool) "profiling on" true (Obs.profiling obs);
  Obs.span obs "outer" (fun () -> Obs.span obs "inner" (fun () -> ()));
  let kinds = List.rev_map (fun (_, ev) -> Trace.kind ev) !events in
  Alcotest.(check (list string)) "span events, properly nested"
    [ "span_begin"; "span_begin"; "span_end"; "span_end" ]
    kinds;
  match List.rev !events with
  | [ _; _; (_, Trace.Span_end { name; total_s; self_s; _ }); (_, Trace.Span_end _) ]
    ->
    Alcotest.(check string) "inner closes first" "inner" name;
    Alcotest.(check bool) "self <= total" true (self_s <= total_s +. 1e-9)
  | _ -> Alcotest.fail "expected two span_end events"

let test_obs_fork_absorb_spans () =
  let parent = Obs.create ~spans:(Span.create ()) () in
  let worker = Obs.fork parent in
  Alcotest.(check bool) "fork mirrors profiling" true (Obs.profiling worker);
  Obs.span worker "work" (fun () -> ());
  Obs.absorb ~into:parent worker;
  match Span.aggregate (Obs.spans parent) with
  | [ a ] ->
    Alcotest.(check string) "merged name" "work" a.Span.agg_name;
    Alcotest.(check int) "merged count" 1 a.Span.count
  | aggs -> Alcotest.failf "expected one merged aggregate, got %d" (List.length aggs)

(* Regression: a scenario that raises mid-span must still flush its
   buffered trace to the sink — the CLI guards the tracer with
   [Fun.protect ~finally:close] (plus an [at_exit] hook), and [close]
   must be safe to call on both paths. *)
let test_obs_trace_flushed_on_raise () =
  let path = Filename.temp_file "drqos_flush" ".jsonl" in
  let obs =
    Obs.create
      ~trace:(Trace.create (Trace.jsonl_sink (open_out path)))
      ~spans:(Span.create ()) ()
  in
  (try
     Fun.protect
       ~finally:(fun () -> Obs.close obs)
       (fun () ->
         Obs.span obs "doomed" (fun () ->
             Obs.event obs (Trace.Link_fail { edge = 3 });
             failwith "simulated crash"))
   with Failure _ -> ());
  (* Double close (Fun.protect now, at_exit later) must stay safe. *)
  Obs.close obs;
  let ic = open_in path in
  let events =
    Jsonx.fold_lines ic ~init:[] ~f:(fun acc ~line:_ doc ->
        match Trace.of_json doc with
        | Ok (_, ev) -> Trace.kind ev :: acc
        | Error msg -> Alcotest.failf "unparseable flushed line: %s" msg)
    |> List.rev
  in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string))
    "everything before and at the crash reached the file"
    [ "span_begin"; "link_fail"; "span_end" ]
    events

(* --- High-watermark gauges --- *)

let test_hwm_basics () =
  let reg = Metrics.create () in
  let w = Metrics.hwm reg "peak" in
  Alcotest.check approx "0 before updates" 0. (Metrics.hwm_value w);
  Metrics.observe_hwm w 3.;
  Metrics.observe_hwm w 10.;
  Metrics.observe_hwm w 7.;
  Alcotest.check approx "keeps the max" 10. (Metrics.hwm_value w);
  Alcotest.(check bool) "interned by name" true (Metrics.hwm reg "peak" == w);
  let snap = Jsonx.of_string (Jsonx.to_string (Metrics.snapshot reg)) in
  let peak = member_exn "peak" (member_exn "hwm" snap) in
  Alcotest.check approx "snapshot value" 10.
    (get_exn (Jsonx.to_float (member_exn "value" peak)));
  Alcotest.(check int) "snapshot updates" 3
    (get_exn (Jsonx.to_int (member_exn "updates" peak)))

let test_hwm_merge_order_independent () =
  (* The reason hwm exists: gauges keep the *last* value, which depends
     on worker absorb order; watermarks max-merge, so any permutation of
     the same forks yields the same combined peak. *)
  let mk v =
    let r = Metrics.create () in
    Metrics.observe_hwm (Metrics.hwm r "live_peak") v;
    r
  in
  let merged order =
    let into = Metrics.create () in
    List.iter (fun v -> Metrics.merge_into ~into (mk v)) order;
    Metrics.hwm_value (Metrics.hwm into "live_peak")
  in
  let a = merged [ 4.; 9.; 2. ] in
  let b = merged [ 2.; 4.; 9. ] in
  let c = merged [ 9.; 2.; 4. ] in
  Alcotest.check approx "order 1 = order 2" a b;
  Alcotest.check approx "order 2 = order 3" b c;
  Alcotest.check approx "merged value is the true peak" 9. a

let test_counter_values_sorted_and_disabled () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "z.last") 3;
  Metrics.add (Metrics.counter reg "a.first") 1;
  Alcotest.(check (list (pair string int)))
    "name-sorted cumulative values"
    [ ("a.first", 1); ("z.last", 3) ]
    (Metrics.counter_values reg);
  Alcotest.(check (list (pair string int)))
    "disabled registry exposes nothing" []
    (Metrics.counter_values Metrics.disabled)

(* --- Heavy-hitter sketches --- *)

(* A deterministic skewed stream: key k with true frequency freq(k). *)
let heavy_stream =
  let freqs = [ (1, 500); (2, 240); (3, 120); (4, 60); (5, 30) ] in
  let tail = List.init 40 (fun i -> (100 + i, 3)) in
  freqs @ tail

let offer_stream sk =
  (* Interleave round-robin so the tail keys contend with the heavy
     ones, exercising eviction rather than insertion order. *)
  let remaining = ref (List.map (fun (k, n) -> (k, ref n)) heavy_stream) in
  while !remaining <> [] do
    remaining :=
      List.filter
        (fun (k, n) ->
          if !n > 0 then begin
            Heavy.offer sk k;
            decr n
          end;
          !n > 0)
        !remaining
  done

let test_heavy_error_bound () =
  let sk = Heavy.standalone ~capacity:16 ~enabled:true () in
  offer_stream sk;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 heavy_stream in
  Alcotest.(check int) "total is exact" total (Heavy.total sk);
  Alcotest.(check bool) "tracked bounded by capacity" true
    (Heavy.tracked sk <= Heavy.capacity sk);
  let bound = total / Heavy.capacity sk in
  List.iter
    (fun (key, cnt, err) ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d error within total/capacity" key)
        true (err <= bound);
      match List.assoc_opt key heavy_stream with
      | None -> ()
      | Some truth ->
        Alcotest.(check bool)
          (Printf.sprintf "key %d: true <= est <= true + err" key)
          true
          (truth <= cnt && cnt <= truth + err))
    (Heavy.top sk);
  (* Every key with true frequency above total/capacity must be tracked,
     with its estimate sandwiched by the space-saving guarantee. *)
  List.iter
    (fun (key, truth) ->
      if truth > bound then
        match Heavy.estimate sk key with
        | None ->
          Alcotest.failf "heavy key %d (freq %d > %d) not tracked" key truth
            bound
        | Some (cnt, err) ->
          Alcotest.(check bool)
            (Printf.sprintf "estimate of %d sandwiched" key)
            true
            (cnt - err <= truth && truth <= cnt))
    heavy_stream;
  (* The heaviest key wins the top-1 slot outright. *)
  match Heavy.top ~k:1 sk with
  | [ (key, _, _) ] -> Alcotest.(check int) "top-1 is the heaviest key" 1 key
  | l -> Alcotest.failf "top ~k:1 returned %d entries" (List.length l)

let test_heavy_merge_associative () =
  (* Three streams whose key union fits the capacity: merging is an
     exact sum, so both association orders agree exactly. *)
  let mk offers =
    let sk = Heavy.standalone ~capacity:16 ~enabled:true () in
    List.iter (fun (k, n) -> Heavy.offer ~by:n sk k) offers;
    sk
  in
  let sa = [ (1, 10); (2, 5) ]
  and sb = [ (2, 7); (3, 2) ]
  and sc = [ (3, 4); (4, 1) ] in
  (* (a ⊕ b) ⊕ c *)
  let left = mk sa in
  let b1 = mk sb in
  Heavy.merge_sketch_into ~into:left b1;
  Heavy.merge_sketch_into ~into:left (mk sc);
  (* a ⊕ (b ⊕ c) *)
  let bc = mk sb in
  Heavy.merge_sketch_into ~into:bc (mk sc);
  let right = mk sa in
  Heavy.merge_sketch_into ~into:right bc;
  Alcotest.(check bool) "association orders agree" true
    (Heavy.top left = Heavy.top right);
  Alcotest.(check int) "merged total" (10 + 5 + 7 + 2 + 4 + 1)
    (Heavy.total left);
  Alcotest.(check bool) "exact sums below capacity"
    true
    (Heavy.top left
    = [ (2, 12, 0); (1, 10, 0); (3, 6, 0); (4, 1, 0) ])

let test_heavy_registry_merge () =
  let a = Heavy.create () and b = Heavy.create () in
  Heavy.offer ~by:3 (Heavy.sketch a "links") 7;
  Heavy.offer ~by:2 (Heavy.sketch b "links") 7;
  Heavy.offer (Heavy.sketch b "links") 9;
  Heavy.merge_into ~into:a b;
  Alcotest.(check bool) "same-named sketches folded" true
    (Heavy.top (Heavy.sketch a "links") = [ (7, 5, 0); (9, 1, 0) ]);
  Alcotest.(check bool) "disabled sketch never records" true
    (Heavy.total (Heavy.sketch Heavy.disabled "links") = 0
    && not (Heavy.sketch_enabled (Heavy.sketch Heavy.disabled "links")))

(* --- Flight recorder --- *)

let test_flight_wraparound () =
  let f = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.record f ~time:(float_of_int i) (Trace.Link_fail { edge = i })
  done;
  Alcotest.(check int) "size capped" 4 (Flight.size f);
  Alcotest.(check int) "seen counts everything" 10 (Flight.seen f);
  Alcotest.(check (list int)) "retains the last N, oldest first"
    [ 7; 8; 9; 10 ]
    (List.map
       (fun (_, ev) ->
         match ev with Trace.Link_fail { edge } -> edge | _ -> -1)
       (Flight.events f));
  Flight.clear f;
  Alcotest.(check int) "clear empties the ring" 0 (Flight.size f)

let test_flight_dump_on_raise () =
  let path = Filename.temp_file "drqos_flight" ".jsonl" in
  let flight = Flight.create ~capacity:8 () in
  let obs = Obs.create ~flight () in
  (* The whole point of the recorder: event capture with no trace sink. *)
  Alcotest.(check bool) "tracing on via flight alone" true (Obs.tracing obs);
  Obs.set_clock obs (fun () -> 5.);
  Obs.set_flight_dump obs path;
  (try
     Fun.protect
       ~finally:(fun () -> ignore (Obs.dump_flight obs))
       (fun () ->
         Obs.event obs (Trace.Link_fail { edge = 3 });
         Obs.event obs (Trace.Drop { channel = 1 });
         failwith "simulated crash")
   with Failure _ -> ());
  (* The dump is JSONL that Analysis/Trace can replay: a note header
     naming the recorder, then the retained events. *)
  let ic = open_in path in
  let events =
    Jsonx.fold_lines ic ~init:[] ~f:(fun acc ~line:_ doc ->
        match Trace.of_json doc with
        | Ok (t, ev) -> (t, Trace.kind ev) :: acc
        | Error msg -> Alcotest.failf "unparseable dump line: %s" msg)
    |> List.rev
  in
  close_in ic;
  Sys.remove path;
  (match events with
  | (_, "note") :: rest ->
    Alcotest.(check (list (pair (Alcotest.float 1e-9) string)))
      "events at the crash clock"
      [ (5., "link_fail"); (5., "drop") ]
      rest
  | _ -> Alcotest.fail "dump must start with the flight_recorder note");
  Alcotest.(check bool) "second dump is a no-op (idempotent)" true
    (Obs.dump_flight obs = None)

let test_flight_dump_cancelled_on_success () =
  let path = Filename.temp_file "drqos_flight" ".jsonl" in
  Sys.remove path;
  let obs = Obs.create ~flight:(Flight.create ~capacity:8 ()) () in
  Obs.set_flight_dump obs path;
  Obs.event obs (Trace.Link_fail { edge = 1 });
  Obs.cancel_flight_dump obs;
  Alcotest.(check bool) "disarmed dump writes nothing" true
    (Obs.dump_flight obs = None && not (Sys.file_exists path))

(* --- Snapshot emitter --- *)

type fake_run = {
  mutable fr_time : float;
  mutable fr_events : int;
  mutable fr_live : int array;
  mutable fr_queue : int;
  mutable fr_counters : (string * int) list;
  mutable fr_slo : int * int;
}

let fake_source r =
  {
    Snapshot.sim_time = (fun () -> r.fr_time);
    events = (fun () -> r.fr_events);
    live_by_level = (fun () -> r.fr_live);
    queue_size = (fun () -> r.fr_queue);
    queue_footprint = (fun () -> 2 * r.fr_queue);
    hot = (fun () -> [ (17, r.fr_events) ]);
    counters = (fun () -> r.fr_counters);
    slo = (fun () -> r.fr_slo);
  }

let test_snapshot_emitter_roundtrip () =
  let lines = ref [] in
  let snap =
    Snapshot.create ~sim_every:10. ~sink:(fun l -> lines := l :: !lines) ()
  in
  Alcotest.(check bool) "sim_every exposed" true
    (Snapshot.sim_every snap = Some 10.);
  let r =
    {
      fr_time = 0.;
      fr_events = 5;
      fr_live = [| 1; 0; 2 |];
      fr_queue = 4;
      fr_counters = [ ("a.ops", 5); ("b.idle", 0) ];
      fr_slo = (3, 1);
    }
  in
  Snapshot.start snap (fake_source r);
  r.fr_time <- 10.;
  r.fr_events <- 25;
  r.fr_counters <- [ ("a.ops", 25); ("b.idle", 0) ];
  Snapshot.tick snap;
  r.fr_time <- 20.;
  r.fr_events <- 30;
  r.fr_live <- [| 0; 1; 1 |];
  r.fr_queue <- 1;
  r.fr_counters <- [ ("a.ops", 31); ("b.idle", 0); ("c.new", 2) ];
  Snapshot.tick snap;
  Alcotest.(check int) "two snapshots emitted" 2 (Snapshot.emitted snap);
  let parsed =
    List.rev_map
      (fun line ->
        match Trace.of_json (Jsonx.of_string line) with
        | Ok
            ( t,
              Trace.Snapshot
                {
                  seq;
                  d_events;
                  live;
                  live_by_level;
                  footprint;
                  peak_live;
                  peak_queue;
                  hot;
                  counters;
                  _;
                } ) ->
          ( t,
            seq,
            d_events,
            live,
            live_by_level,
            footprint,
            peak_live,
            peak_queue,
            hot,
            counters )
        | Ok _ -> Alcotest.fail "non-snapshot line in the stream"
        | Error msg -> Alcotest.failf "unparseable snapshot line: %s" msg)
      !lines
  in
  match parsed with
  | [
   (t1, seq1, d1, live1, _, _, _, _, hot1, counters1);
   (t2, seq2, d2, _, levels2, footprint2, peak_live2, peak_queue2, _, counters2);
  ] ->
    Alcotest.check approx "first tick time" 10. t1;
    Alcotest.check approx "second tick time" 20. t2;
    Alcotest.(check int) "seq 0" 0 seq1;
    Alcotest.(check int) "seq 1" 1 seq2;
    Alcotest.(check int) "d_events against start baseline" 20 d1;
    Alcotest.(check int) "d_events between ticks" 5 d2;
    Alcotest.(check int) "live sums levels" 3 live1;
    Alcotest.(check (list int)) "levels verbatim" [ 0; 1; 1 ] levels2;
    Alcotest.(check int) "peak live survives the drop" 3 peak_live2;
    Alcotest.(check int) "peak queue survives the drop" 4 peak_queue2;
    Alcotest.(check int) "footprint from the source" 2 footprint2;
    Alcotest.(check (list (pair string int)))
      "counter deltas, zero-suppressed"
      [ ("a.ops", 20) ] counters1;
    Alcotest.(check (list (pair string int)))
      "new names and fresh deltas appear"
      [ ("a.ops", 6); ("c.new", 2) ]
      counters2;
    Alcotest.(check bool) "hot links pass through" true (hot1 = [ (17, 25) ])
  | l -> Alcotest.failf "expected 2 parsed snapshots, got %d" (List.length l)

let test_snapshot_create_validates () =
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "sim_every <= 0 rejected" true
    (bad (fun () -> Snapshot.create ~sim_every:0. ~sink:ignore ()));
  Alcotest.(check bool) "wall_every <= 0 rejected" true
    (bad (fun () -> Snapshot.create ~wall_every:(-1.) ~sink:ignore ()))

let test_snapshot_tick_before_start () =
  let lines = ref [] in
  let snap =
    Snapshot.create ~sim_every:1. ~sink:(fun l -> lines := l :: !lines) ()
  in
  Snapshot.tick snap;
  Snapshot.wall_tick snap;
  Alcotest.(check int) "no source, no output" 0 (List.length !lines)

(* --- Wall heartbeats --- *)

type hb = {
  hb_seq : int;
  hb_wall_s : float;
  hb_d_events : int;
  hb_ops_per_s : float;
  hb_minor : float;
  hb_major : float;
  hb_heap : int;
}

let heartbeat_lines lines =
  List.rev_map
    (fun line ->
      match Trace.of_json (Jsonx.of_string line) with
      | Ok
          ( _,
            Trace.Heartbeat
              { seq; wall_s; d_events; ops_per_s; minor_words; major_words; heap_words }
          ) ->
        {
          hb_seq = seq;
          hb_wall_s = wall_s;
          hb_d_events = d_events;
          hb_ops_per_s = ops_per_s;
          hb_minor = minor_words;
          hb_major = major_words;
          hb_heap = heap_words;
        }
      | Ok (_, ev) -> Alcotest.failf "non-heartbeat line: %s" (Trace.kind ev)
      | Error msg -> Alcotest.failf "unparseable heartbeat line: %s" msg)
    lines

let test_wall_heartbeat_cadence () =
  let lines = ref [] in
  let snap =
    Snapshot.create ~wall_every:0.001 ~sink:(fun l -> lines := l :: !lines) ()
  in
  Alcotest.(check bool) "wall_every exposed" true
    (Snapshot.wall_every snap = Some 0.001);
  let r =
    {
      fr_time = 1.;
      fr_events = 10;
      fr_live = [| 1 |];
      fr_queue = 0;
      fr_counters = [];
      fr_slo = (0, 0);
    }
  in
  Snapshot.start snap (fake_source r);
  r.fr_events <- 40;
  Snapshot.wall_tick snap;
  r.fr_events <- 45;
  Snapshot.wall_tick snap;
  Snapshot.wall_tick snap;
  match heartbeat_lines !lines with
  | [ h0; h1; h2 ] ->
    Alcotest.(check (list int)) "seq increments from 0" [ 0; 1; 2 ]
      [ h0.hb_seq; h1.hb_seq; h2.hb_seq ];
    (* The monotonic clock can never run backwards, so the cumulative
       wall_s series is non-negative and non-decreasing. *)
    Alcotest.(check bool) "wall_s non-negative" true (h0.hb_wall_s >= 0.);
    Alcotest.(check bool) "wall_s non-decreasing" true
      (h0.hb_wall_s <= h1.hb_wall_s && h1.hb_wall_s <= h2.hb_wall_s);
    (* Event deltas are against the previous *wall* tick. *)
    Alcotest.(check (list int)) "d_events per wall interval" [ 30; 5; 0 ]
      [ h0.hb_d_events; h1.hb_d_events; h2.hb_d_events ];
    List.iter
      (fun h ->
        Alcotest.(check bool) "ops_per_s non-negative" true (h.hb_ops_per_s >= 0.))
      [ h0; h1; h2 ]
  | l -> Alcotest.failf "expected 3 heartbeats, got %d" (List.length l)

let test_wall_heartbeat_gc_sanity () =
  let lines = ref [] in
  let snap =
    Snapshot.create ~wall_every:0.001 ~sink:(fun l -> lines := l :: !lines) ()
  in
  let r =
    {
      fr_time = 0.;
      fr_events = 0;
      fr_live = [||];
      fr_queue = 0;
      fr_counters = [];
      fr_slo = (0, 0);
    }
  in
  Snapshot.start snap (fake_source r);
  (* Allocate deliberately between ticks so the minor-words delta is
     visibly positive, not merely non-negative.  On OCaml 5,
     [Gc.quick_stat] folds allocation into [minor_words] only at minor
     collections, so force one before reading. *)
  let junk = ref [] in
  for i = 1 to 10_000 do
    junk := (i, float_of_int i) :: !junk
  done;
  ignore (List.length !junk);
  Gc.minor ();
  Snapshot.wall_tick snap;
  Snapshot.wall_tick snap;
  match heartbeat_lines !lines with
  | [ h0; h1 ] ->
    Alcotest.(check bool) "allocation shows up in the first delta" true
      (h0.hb_minor > 0.);
    (* GC deltas are between consecutive ticks of monotone cumulative
       counters: never negative, on any tick. *)
    List.iter
      (fun h ->
        Alcotest.(check bool) "minor delta >= 0" true (h.hb_minor >= 0.);
        Alcotest.(check bool) "major delta >= 0" true (h.hb_major >= 0.);
        Alcotest.(check bool) "heap_words positive" true (h.hb_heap > 0))
      [ h0; h1 ]
  | l -> Alcotest.failf "expected 2 heartbeats, got %d" (List.length l)

let test_wall_heartbeat_interleaves_with_snapshots () =
  (* Event-time snapshots and wall heartbeats share one emitter but keep
     independent sequence numbers and independent event-delta baselines:
     a wall tick must not consume the event-time delta, and vice versa. *)
  let lines = ref [] in
  let snap =
    Snapshot.create ~sim_every:10. ~wall_every:0.001
      ~sink:(fun l -> lines := l :: !lines)
      ()
  in
  let r =
    {
      fr_time = 0.;
      fr_events = 0;
      fr_live = [| 2 |];
      fr_queue = 1;
      fr_counters = [];
      fr_slo = (0, 0);
    }
  in
  Snapshot.start snap (fake_source r);
  r.fr_time <- 10.;
  r.fr_events <- 100;
  Snapshot.wall_tick snap;
  Snapshot.tick snap;
  r.fr_time <- 20.;
  r.fr_events <- 150;
  Snapshot.tick snap;
  Snapshot.wall_tick snap;
  Alcotest.(check int) "four lines emitted" 4 (Snapshot.emitted snap);
  let parsed =
    List.rev_map
      (fun line ->
        match Trace.of_json (Jsonx.of_string line) with
        | Ok (_, Trace.Heartbeat { seq; d_events; _ }) -> ("hb", seq, d_events)
        | Ok (_, Trace.Snapshot { seq; d_events; _ }) -> ("snap", seq, d_events)
        | Ok (_, ev) -> Alcotest.failf "unexpected line: %s" (Trace.kind ev)
        | Error msg -> Alcotest.failf "unparseable line: %s" msg)
      !lines
  in
  (* Wall deltas span wall ticks; snapshot deltas span snapshots; the
     two streams keep independent sequence numbers. *)
  Alcotest.(check (list (triple string int int)))
    "independent seq and delta baselines"
    [ ("hb", 0, 100); ("snap", 0, 100); ("snap", 1, 50); ("hb", 1, 50) ]
    parsed

(* --- Monotonic clock (regression: timing now immune to wall steps) --- *)

let test_clock_monotone () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    if t < !prev then
      Alcotest.failf "Clock.now ran backwards: %.9f after %.9f" t !prev;
    prev := t
  done;
  let t0 = Clock.now () in
  for _ = 1 to 1_000 do
    if Clock.elapsed_since t0 < 0. then
      Alcotest.fail "Clock.elapsed_since returned a negative duration"
  done;
  Alcotest.(check bool) "now_ns non-negative" true (Clock.now_ns () >= 0L)

let test_observations_never_negative () =
  (* The bug this guards against: durations measured with
     [Unix.gettimeofday] go negative when NTP steps the wall clock
     backwards mid-measurement.  Timers and spans now read the
     monotonic clock, so every recorded duration is >= 0 by
     construction — [Metrics.observe] would raise on a negative
     observation, and the span records must agree. *)
  let reg = Metrics.create () in
  let tm = Metrics.timer reg "clock.regression" in
  for _ = 1 to 1_000 do
    Metrics.time tm (fun () -> ignore (Sys.opaque_identity (ref 0)))
  done;
  Alcotest.(check int) "all observations recorded" 1_000 (Metrics.timer_count tm);
  Alcotest.(check bool) "q=0 (minimum bucket) non-negative" true
    (Metrics.timer_quantile tm 0. >= 0.);
  Alcotest.(check bool) "total non-negative" true (Metrics.timer_total tm >= 0.);
  let sp = Span.create () in
  for _ = 1 to 1_000 do
    Span.wrap sp "tick" (fun () -> ignore (Sys.opaque_identity (ref 0)))
  done;
  List.iter
    (fun r ->
      if r.Span.total_s < 0. || r.Span.self_s < 0. then
        Alcotest.failf "negative span duration: total=%.9g self=%.9g"
          r.Span.total_s r.Span.self_s)
    (Span.records sp)

let test_clock_elapsed_future_clamped () =
  (* An origin "in the future" (only possible on the realtime fallback
     path) must clamp to zero, never go negative. *)
  Alcotest.check approx "future origin clamps to zero" 0.
    (Clock.elapsed_since (Clock.now () +. 60.))

let test_clock_ns_agrees_with_now () =
  let a = Clock.now () in
  let ns = Clock.now_ns () in
  let b = Clock.now () in
  let ns_s = Int64.to_float ns /. 1e9 in
  Alcotest.(check bool) "now_ns shares now's origin" true
    (a -. 1e-6 <= ns_s && ns_s <= b +. 1e-6)

let test_clock_wall_agrees_across_domains () =
  (* [fork]ed worker contexts carry independent trace clocks, but the
     calendar label must come from one shared epoch source in every
     domain. *)
  let w0 = Clock.wall_s () in
  let w1 = Domain.join (Domain.spawn (fun () -> Clock.wall_s ())) in
  Alcotest.(check bool) "epoch-anchored" true (w0 > 1.6e9);
  Alcotest.(check bool) "same source across domains" true
    (Float.abs (w1 -. w0) < 60.)

(* --- Request tracing (Reqtrace) --- *)

let stage_list seconds = List.map2 (fun st s -> (st, s)) Reqtrace.all_stages seconds

let test_reqtrace_observe_records () =
  let events = ref [] in
  let sink =
    { Trace.emit = (fun t ev -> events := (t, ev) :: !events);
      close = (fun () -> ()) }
  in
  let obs =
    Obs.create ~metrics:(Metrics.create ()) ~trace:(Trace.create sink)
      ~heavy:(Heavy.create ()) ()
  in
  let exemplars = ref [] in
  let rt =
    Reqtrace.create ~slo:0.5 ~on_exemplar:(fun e -> exemplars := e :: !exemplars)
      obs
  in
  Reqtrace.observe rt ~rid:7 ~verb:"admit" ~verb_index:0 ~ok:true
    ~stages:(stage_list [ 0.01; 0.02; 0.03; 0.04; 0.05 ])
    ~total_s:0.15;
  Reqtrace.observe rt ~rid:8 ~verb:"chqos" ~verb_index:2 ~ok:false
    ~stages:(stage_list [ 0.2; 0.1; 0.3; 0.2; 0.2 ])
    ~total_s:1.0;
  Alcotest.(check (pair int int)) "slo counts" (1, 1) (Reqtrace.slo_counts rt);
  (match !exemplars with
  | [ e ] ->
    Alcotest.(check int) "exemplar rid" 8 e.Reqtrace.ex_rid;
    Alcotest.check approx "exemplar total" 1.0 e.Reqtrace.ex_total_s;
    Alcotest.(check int) "exemplar carries all stages" 5
      (List.length e.Reqtrace.ex_stages)
  | l -> Alcotest.failf "expected 1 exemplar, got %d" (List.length l));
  let reg = Obs.metrics obs in
  List.iter
    (fun st ->
      Alcotest.(check int)
        (Reqtrace.timer_name st ^ " count")
        2
        (Metrics.timer_count (Metrics.timer reg (Reqtrace.timer_name st))))
    Reqtrace.all_stages;
  Alcotest.(check int) "req.total count" 2
    (Metrics.timer_count (Metrics.timer reg "req.total"));
  (* The Req_begin / Req_stage* / Req_end trio, emitted atomically per
     completion. *)
  let evs = List.rev_map snd !events in
  Alcotest.(check int) "2 * (begin + 5 stages + end)" 14 (List.length evs);
  (match evs with
  | Trace.Req_begin { rid = 7; verb = "admit" } :: rest ->
    let rec split k l =
      if k = 0 then ([], l)
      else
        match l with
        | x :: tl ->
          let a, b = split (k - 1) tl in
          (x :: a, b)
        | [] -> Alcotest.fail "trio truncated"
    in
    let stages7, rest = split 5 rest in
    List.iter
      (function
        | Trace.Req_stage { rid = 7; seconds; _ } ->
          if seconds < 0. then Alcotest.fail "negative stage duration"
        | _ -> Alcotest.fail "foreign event inside request 7's trio")
      stages7;
    (match rest with
    | Trace.Req_end { rid = 7; ok = true; total_s; _ } :: _ ->
      Alcotest.check approx "total is the stage sum" 0.15 total_s
    | _ -> Alcotest.fail "request 7 trio not closed by its Req_end")
  | _ -> Alcotest.fail "stream does not start with request 7's Req_begin");
  (* Every emitted event survives the JSONL codec. *)
  List.iter
    (fun ev ->
      match Trace.of_json (Trace.to_json ~time:1. ev) with
      | Ok (_, ev') ->
        if ev' <> ev then Alcotest.fail "request event changed by roundtrip"
      | Error msg -> Alcotest.failf "request event unparseable: %s" msg)
    evs

let test_reqtrace_slo_validation () =
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  Alcotest.(check bool) "slo <= 0 rejected" true
    (match Reqtrace.create ~slo:0. obs with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let rt = Reqtrace.create obs in
  Reqtrace.observe rt ~rid:1 ~verb:"ping" ~verb_index:11 ~ok:true
    ~stages:(stage_list [ 0.; 0.; 0.; 0.; 0. ])
    ~total_s:0.;
  Alcotest.(check (pair int int)) "no slo, no counting" (0, 0)
    (Reqtrace.slo_counts rt)

let test_reqtrace_merges_exactly_across_forks () =
  (* The acceptance bar for --jobs N: per-stage timers recorded in
     worker forks merge back into the parent with exact counts and the
     exact same float totals as summing the forks in join order. *)
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  let per_fork = 25 and forks_n = 4 in
  let forks =
    Array.init forks_n (fun f ->
        Domain.spawn (fun () ->
            let fork = Obs.fork obs in
            let rt = Reqtrace.create fork in
            for i = 1 to per_fork do
              let s = float_of_int ((f * per_fork) + i) *. 1e-4 in
              Reqtrace.observe rt ~rid:i ~verb:"admit" ~verb_index:0 ~ok:true
                ~stages:(stage_list [ s; s; s; s; s ])
                ~total_s:(5. *. s)
            done;
            fork))
  in
  let joined = Array.map Domain.join forks in
  let expected_total name =
    Array.fold_left
      (fun acc fork ->
        acc +. Metrics.timer_total (Metrics.timer (Obs.metrics fork) name))
      0. joined
  in
  let names = List.map Reqtrace.timer_name Reqtrace.all_stages @ [ "req.total" ] in
  let expected = List.map (fun n -> (n, expected_total n)) names in
  Array.iter (fun fork -> Obs.absorb ~into:obs fork) joined;
  List.iter
    (fun (name, exp_total) ->
      let tm = Metrics.timer (Obs.metrics obs) name in
      Alcotest.(check int) (name ^ " count merges exactly")
        (forks_n * per_fork)
        (Metrics.timer_count tm);
      (* Totals are float sums: merge order may reassociate the last
         ulp, but nothing is lost or duplicated. *)
      Alcotest.(check (float 1e-9)) (name ^ " total merges") exp_total
        (Metrics.timer_total tm))
    expected

let test_snapshot_slo_fields () =
  let lines = ref [] in
  let snap =
    Snapshot.create ~sim_every:10. ~sink:(fun l -> lines := l :: !lines) ()
  in
  let r =
    {
      fr_time = 0.;
      fr_events = 0;
      fr_live = [| 0 |];
      fr_queue = 0;
      fr_counters = [];
      fr_slo = (3, 1);
    }
  in
  Snapshot.start snap (fake_source r);
  r.fr_time <- 10.;
  r.fr_slo <- (13, 2);
  Snapshot.tick snap;
  r.fr_time <- 20.;
  r.fr_slo <- (13, 12);
  Snapshot.tick snap;
  let parsed =
    List.rev_map
      (fun line ->
        match Trace.of_json (Jsonx.of_string line) with
        | Ok (_, Trace.Snapshot { slo_good; slo_bad; slo_burn; _ }) ->
          (slo_good, slo_bad, slo_burn)
        | Ok _ -> Alcotest.fail "non-snapshot line"
        | Error msg -> Alcotest.failf "unparseable line: %s" msg)
      !lines
  in
  match parsed with
  | [ (g1, b1, burn1); (g2, b2, burn2) ] ->
    Alcotest.(check (pair int int)) "cumulative after tick 1" (13, 2) (g1, b1);
    (* Burn rate is the bad fraction of *this beat's* delta: 10 good +
       1 bad since start. *)
    Alcotest.check approx "burn of beat 1" (1. /. 11.) burn1;
    Alcotest.(check (pair int int)) "cumulative after tick 2" (13, 12) (g2, b2);
    Alcotest.check approx "burn of beat 2 (all bad)" 1.0 burn2
  | l -> Alcotest.failf "expected 2 snapshots, got %d" (List.length l)

(* --- Stats edge cases (satellite coverage) --- *)

let test_quantile_empty () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Stats.Histogram.quantile h 0.5))

let test_quantile_bounds_q () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  Stats.Histogram.add h 1.;
  Alcotest.(check bool) "q < 0 rejected" true
    (match Stats.Histogram.quantile h (-0.1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "q > 1 rejected" true
    (match Stats.Histogram.quantile h 1.1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_quantile_extremes () =
  (* Data only in the second and fourth of four [0,10) buckets. *)
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  List.iter (Stats.Histogram.add h) [ 3.; 3.; 9.; 9.; 9. ];
  Alcotest.check approx "q=0 hits the first populated bucket" 3.75
    (Stats.Histogram.quantile h 0.);
  Alcotest.check approx "q=1 hits the last populated bucket" 8.75
    (Stats.Histogram.quantile h 1.)

let test_quantile_outlier_buckets () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  (* Outliers clamp into the edge buckets. *)
  Stats.Histogram.add h (-100.);
  Stats.Histogram.add h 1e9;
  Alcotest.(check int) "both counted" 2 (Stats.Histogram.count h);
  Alcotest.check approx "low outlier in bucket 0" 1.25
    (Stats.Histogram.quantile h 0.);
  Alcotest.check approx "high outlier in last bucket" 8.75
    (Stats.Histogram.quantile h 1.)

let test_timed_average_empty_window () =
  let t = Stats.Timed_average.create ~start:3. ~value:17. in
  Alcotest.check approx "zero-span average is the current value" 17.
    (Stats.Timed_average.average t ~upto:3.)

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "special floats" `Quick test_jsonx_special_floats;
          Alcotest.test_case "rejects garbage" `Quick test_jsonx_rejects_garbage;
          Alcotest.test_case "bad unicode escape" `Quick
            test_jsonx_bad_unicode_escape;
          Alcotest.test_case "fold_lines good stream" `Quick test_fold_lines_good;
          Alcotest.test_case "fold_lines truncated" `Quick test_fold_lines_truncated;
          Alcotest.test_case "fold_lines garbage line" `Quick
            test_fold_lines_garbage_line;
          Alcotest.test_case "fold_lines empty" `Quick test_fold_lines_empty_stream;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and snapshot" `Quick
            test_metrics_counters_and_snapshot;
          Alcotest.test_case "disabled is no-op" `Quick test_metrics_disabled_is_noop;
          Alcotest.test_case "toggle" `Quick test_metrics_toggle;
          Alcotest.test_case "timer percentiles" `Quick test_timer_percentiles;
          Alcotest.test_case "percentiles in snapshot" `Quick
            test_timer_percentiles_in_snapshot;
          Alcotest.test_case "percentiles merge exactly" `Quick
            test_timer_percentiles_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_sink_roundtrip;
          Alcotest.test_case "disabled tracer" `Quick
            test_disabled_tracer_emits_nothing;
          Alcotest.test_case "serialisation is total" `Quick
            test_trace_serialisation_total;
          Alcotest.test_case "of_json rejects bad docs" `Quick
            test_trace_of_json_rejects;
          Alcotest.test_case "close is idempotent" `Quick
            test_tracer_close_idempotent;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting and self time" `Quick
            test_span_nesting_and_self_time;
          Alcotest.test_case "exit order enforced" `Quick
            test_span_exit_order_enforced;
          Alcotest.test_case "wrap protects on raise" `Quick
            test_span_wrap_protects_on_raise;
          Alcotest.test_case "record cap" `Quick test_span_record_cap;
          Alcotest.test_case "merge" `Quick test_span_merge;
        ] );
      ( "obs",
        [
          Alcotest.test_case "span and clock" `Quick test_obs_span_and_clock;
          Alcotest.test_case "null ignores clock" `Quick test_obs_null_ignores_clock;
          Alcotest.test_case "profiled span events" `Quick
            test_obs_profiled_span_emits_span_events;
          Alcotest.test_case "fork/absorb spans" `Quick test_obs_fork_absorb_spans;
          Alcotest.test_case "trace flushed on raise" `Quick
            test_obs_trace_flushed_on_raise;
        ] );
      ( "hwm",
        [
          Alcotest.test_case "basics and snapshot" `Quick test_hwm_basics;
          Alcotest.test_case "hwm merge is order-independent" `Quick
            test_hwm_merge_order_independent;
          Alcotest.test_case "counter_values sorted / disabled" `Quick
            test_counter_values_sorted_and_disabled;
        ] );
      ( "heavy",
        [
          Alcotest.test_case "space-saving error bound" `Quick
            test_heavy_error_bound;
          Alcotest.test_case "merge is associative under capacity" `Quick
            test_heavy_merge_associative;
          Alcotest.test_case "registry merge" `Quick test_heavy_registry_merge;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "dump on raise" `Quick test_flight_dump_on_raise;
          Alcotest.test_case "dump cancelled on success" `Quick
            test_flight_dump_cancelled_on_success;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "emitter JSONL roundtrip" `Quick
            test_snapshot_emitter_roundtrip;
          Alcotest.test_case "create validates intervals" `Quick
            test_snapshot_create_validates;
          Alcotest.test_case "tick before start" `Quick
            test_snapshot_tick_before_start;
          Alcotest.test_case "wall heartbeat cadence" `Quick
            test_wall_heartbeat_cadence;
          Alcotest.test_case "wall heartbeat GC sanity" `Quick
            test_wall_heartbeat_gc_sanity;
          Alcotest.test_case "wall heartbeats interleave with snapshots" `Quick
            test_wall_heartbeat_interleaves_with_snapshots;
          Alcotest.test_case "slo fields and burn rate" `Quick
            test_snapshot_slo_fields;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
          Alcotest.test_case "observations never negative" `Quick
            test_observations_never_negative;
          Alcotest.test_case "elapsed_since clamps future origins" `Quick
            test_clock_elapsed_future_clamped;
          Alcotest.test_case "now_ns agrees with now" `Quick
            test_clock_ns_agrees_with_now;
          Alcotest.test_case "wall_s agrees across domains" `Quick
            test_clock_wall_agrees_across_domains;
        ] );
      ( "reqtrace",
        [
          Alcotest.test_case "observe feeds timers, sketch, slo, trio" `Quick
            test_reqtrace_observe_records;
          Alcotest.test_case "slo validation and off-by-default" `Quick
            test_reqtrace_slo_validation;
          Alcotest.test_case "stage timers merge exactly across forks" `Quick
            test_reqtrace_merges_exactly_across_forks;
        ] );
      ( "stats-edges",
        [
          Alcotest.test_case "quantile empty" `Quick test_quantile_empty;
          Alcotest.test_case "quantile q bounds" `Quick test_quantile_bounds_q;
          Alcotest.test_case "quantile extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "quantile outliers" `Quick test_quantile_outlier_buckets;
          Alcotest.test_case "timed average empty window" `Quick
            test_timed_average_empty_window;
        ] );
    ]
