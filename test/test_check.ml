(* Tests for the fuzzing library (lib/check): the op language, the
   fuzzer + shrinker machinery, and the differential oracles.  The
   bounded quick runs here are the `dune runtest` surface of the fuzzer;
   the CLI (`drqos_cli fuzz`) and scripts/verify.sh run longer ones. *)

let sample_ops =
  [
    Op.Admit { src = 50886; dst = 53019; qos = 15206 };
    Op.Terminate 7;
    Op.Change_qos (83635, 43932);
    Op.Fail 69609;
    Op.Repair 3;
    Op.Set_auto true;
    Op.Set_auto false;
    Op.Redistribute_all;
  ]

let test_op_roundtrip () =
  List.iter
    (fun op ->
      match Op.of_string (Op.to_string op) with
      | Some op' ->
        Alcotest.(check string) "round-trips" (Op.to_string op) (Op.to_string op');
        Alcotest.(check bool) "structurally equal" true (op = op')
      | None -> Alcotest.fail ("unparseable: " ^ Op.to_string op))
    sample_ops

let test_op_rejects_garbage () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Op.of_string s = None))
    [ ""; "admit 1"; "frobnicate 3"; "terminate x"; "auto maybe"; "fail" ]

(* Every family must survive a few hundred random ops with the full
   invariant suite (including predicted counters) audited after each
   one.  This is the regression net for the four bugs this fuzzer
   originally flushed out of Drcomm. *)
let quick_fuzz family () =
  let cfg = Fuzz.config ~family ~seed:1 ~ops:400 () in
  match Fuzz.run cfg with
  | Ok stats ->
    Alcotest.(check int) "all ops ran" 400 stats.Fuzz.ops_run;
    Alcotest.(check bool) "non-trivial run" true (stats.Fuzz.admitted > 0)
  | Error f ->
    Alcotest.fail
      (Printf.sprintf "violation at op %d: %s" f.Fuzz.violation.Fuzz.index
         f.Fuzz.violation.Fuzz.message)

(* Scripts and topologies are pure functions of the config. *)
let test_fuzz_deterministic () =
  let cfg = Fuzz.config ~family:Fuzz.Waxman ~seed:9 ~ops:120 () in
  let ops1 = Fuzz.gen_ops cfg and ops2 = Fuzz.gen_ops cfg in
  Alcotest.(check bool) "same script" true (ops1 = ops2);
  let g1 = Fuzz.topology cfg and g2 = Fuzz.topology cfg in
  Alcotest.(check int) "same nodes" (Graph.node_count g1) (Graph.node_count g2);
  Alcotest.(check int) "same edges" (Graph.edge_count g1) (Graph.edge_count g2);
  let r1 = Fuzz.replay cfg ops1 and r2 = Fuzz.replay cfg ops2 in
  Alcotest.(check bool) "same stats" true (r1.Fuzz.stats = r2.Fuzz.stats)

(* An injected fault ("three channels live") must be caught, shrunk to a
   near-minimal script, and the reproducer must replay verbatim. *)
let injected t = if Drcomm.count t >= 3 then failwith "injected: three live channels"

let test_injected_fault_shrinks () =
  let cfg = Fuzz.config ~family:Fuzz.Waxman ~seed:42 ~ops:400 () in
  match Fuzz.run ~extra_invariant:injected cfg with
  | Ok _ -> Alcotest.fail "injected fault not detected"
  | Error f ->
    let contains ~sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "fault message surfaced" true
      (contains ~sub:"injected" f.Fuzz.violation.Fuzz.message);
    (* Reaching three live channels needs exactly three admits. *)
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to <= 10 ops (got %d)" (Array.length f.Fuzz.script))
      true
      (Array.length f.Fuzz.script <= 10);
    (* The reproducer replays to the same failure... *)
    let r = Fuzz.replay ~extra_invariant:injected cfg f.Fuzz.script in
    (match r.Fuzz.violation with
    | Some v ->
      Alcotest.(check int) "fails at the last op" (Array.length f.Fuzz.script - 1)
        v.Fuzz.index
    | None -> Alcotest.fail "shrunk script no longer fails");
    (* ... and is 1-minimal: dropping any op makes the failure vanish. *)
    Array.iteri
      (fun i _ ->
        let pruned =
          Array.of_list
            (List.filteri (fun j _ -> j <> i) (Array.to_list f.Fuzz.script))
        in
        let r = Fuzz.replay ~extra_invariant:injected cfg pruned in
        Alcotest.(check bool)
          (Printf.sprintf "dropping op %d defuses the script" i)
          true (r.Fuzz.violation = None))
      f.Fuzz.script

(* The black box: a failure carries the final (shrunk) replay's last
   trace events, timestamped with op indices, and dumps as replayable
   JSONL next to the reproducer. *)
let test_failure_carries_flight () =
  let cfg = Fuzz.config ~family:Fuzz.Waxman ~seed:42 ~ops:400 () in
  match Fuzz.run ~extra_invariant:injected cfg with
  | Ok _ -> Alcotest.fail "injected fault not detected"
  | Error f ->
    Alcotest.(check bool) "flight recorder non-empty" true (f.Fuzz.flight <> []);
    (* Event times are op indices into the shrunk script. *)
    let n = Array.length f.Fuzz.script in
    List.iter
      (fun (t, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "event time %g within [0, %d)" t n)
          true
          (t >= 0. && t < float_of_int n))
      f.Fuzz.flight;
    (* The last recorded events come from the final (failing) op. *)
    let last_t, _ = List.nth f.Fuzz.flight (List.length f.Fuzz.flight - 1) in
    Alcotest.(check (float 1e-9)) "tail events at the failing op"
      (float_of_int f.Fuzz.violation.Fuzz.index)
      last_t;
    (* And the dump is JSONL that Analysis replays. *)
    let path = Filename.temp_file "drqos_fuzz_flight" ".jsonl" in
    let oc = open_out path in
    Flight.dump_events f.Fuzz.flight oc;
    close_out oc;
    let a = Analysis.of_file path in
    Sys.remove path;
    Alcotest.(check int) "every event (plus the note header) replays"
      (List.length f.Fuzz.flight + 1)
      (Analysis.event_count a)

let test_reproducer_roundtrip () =
  let cfg =
    Fuzz.config ~family:Fuzz.Torus ~seed:42 ~ops:400 ~capacity:900 ~backups:1
      ~policy:Policy.proportional ()
  in
  match Fuzz.run ~extra_invariant:injected cfg with
  | Ok _ -> Alcotest.fail "injected fault not detected"
  | Error f -> (
    let text = Fuzz.to_script f in
    match Fuzz.parse_script text with
    | Error e -> Alcotest.fail ("reproducer does not parse: " ^ e)
    | Ok (cfg', ops) ->
      Alcotest.(check string) "family survives" "torus" (Fuzz.family_name cfg'.Fuzz.family);
      Alcotest.(check int) "seed survives" 42 cfg'.Fuzz.seed;
      Alcotest.(check int) "capacity survives" 900 cfg'.Fuzz.capacity;
      Alcotest.(check int) "backups survive" 1 cfg'.Fuzz.backups_per_connection;
      Alcotest.(check bool) "policy survives" true
        (Policy.equal cfg'.Fuzz.policy Policy.proportional);
      Alcotest.(check bool) "ops survive" true (ops = f.Fuzz.script);
      (* Parsing and replaying the printed text reproduces the failure. *)
      let r = Fuzz.replay ~extra_invariant:injected cfg' ops in
      Alcotest.(check bool) "replays to a violation" true (r.Fuzz.violation <> None))

(* Differential oracle: with gamma = 0 the Markov model must collapse to
   the uncontended ideal for any QoS spec. *)
let test_gamma0_oracle () =
  Oracle.check_gamma0_agreement (Qos.paper_spec ~increment:100);
  Oracle.check_gamma0_agreement (Qos.paper_spec ~increment:50);
  Oracle.check_gamma0_agreement (Qos.make ~b_min:200 ~b_max:400 ~increment:50 ~utility:0.7 ());
  Oracle.check_gamma0_agreement (Qos.single_value 150)

(* Differential oracle: fail -> repair -> redistribute of a backup-only
   edge is an exact no-op on the bandwidth allocation. *)
let test_fail_repair_roundtrip_oracle () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  let e23 = Graph.add_edge g 2 3 in
  ignore (Graph.add_edge g 3 0);
  let t = Drcomm.create (Net_state.create ~capacity:1000 g) in
  (match Drcomm.admit t ~src:0 ~dst:1 ~qos:(Qos.paper_spec ~increment:100) with
  | Drcomm.Admitted _ -> ()
  | Drcomm.Rejected _ -> Alcotest.fail "admission failed");
  (* e23 lies on the backup route 0-3-2-1 only. *)
  Oracle.check_fail_repair_roundtrip t ~edge:e23;
  Drcomm.check_invariants t

let test_fail_repair_roundtrip_rejects_primary_edge () =
  let g = Graph.create 4 in
  let e01 = Graph.add_edge g 0 1 in
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 2 3);
  ignore (Graph.add_edge g 3 0);
  let t = Drcomm.create (Net_state.create ~capacity:1000 g) in
  (match Drcomm.admit t ~src:0 ~dst:1 ~qos:(Qos.paper_spec ~increment:100) with
  | Drcomm.Admitted _ -> ()
  | Drcomm.Rejected _ -> Alcotest.fail "admission failed");
  match Oracle.check_fail_repair_roundtrip t ~edge:e01 with
  | () -> Alcotest.fail "primary edge must be refused"
  | exception Invalid_argument _ -> ()

(* Differential oracle: a channel alone on its path reaches its ceiling
   under auto-redistribution. *)
let test_unshared_at_ceiling_oracle () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  let cfg = Drcomm.Config.make ~with_backups:false ~require_backup:false () in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:2000 g) in
  (match Drcomm.admit t ~src:0 ~dst:2 ~qos:(Qos.paper_spec ~increment:100) with
  | Drcomm.Admitted _ -> ()
  | Drcomm.Rejected _ -> Alcotest.fail "admission failed");
  Oracle.check_unshared_at_ceiling t

let () =
  Alcotest.run "check"
    [
      ( "op-language",
        [
          Alcotest.test_case "round-trip" `Quick test_op_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_op_rejects_garbage;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "waxman quick" `Quick (quick_fuzz Fuzz.Waxman);
          Alcotest.test_case "torus quick" `Quick (quick_fuzz Fuzz.Torus);
          Alcotest.test_case "transit-stub quick" `Quick (quick_fuzz Fuzz.Transit_stub);
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "injected fault shrinks" `Quick test_injected_fault_shrinks;
          Alcotest.test_case "failure carries the flight recorder" `Quick
            test_failure_carries_flight;
          Alcotest.test_case "reproducer round-trip" `Quick test_reproducer_roundtrip;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "gamma=0 model vs ideal" `Quick test_gamma0_oracle;
          Alcotest.test_case "fail/repair round-trip" `Quick
            test_fail_repair_roundtrip_oracle;
          Alcotest.test_case "round-trip refuses primary edge" `Quick
            test_fail_repair_roundtrip_rejects_primary_edge;
          Alcotest.test_case "unshared at ceiling" `Quick test_unshared_at_ceiling_oracle;
        ] );
    ]
