(* The QoS-broker daemon stack: codec round-trips, the fuzz-op bridge
   (checked against [Fuzz.replay]'s state trajectory), socket-free
   broker dispatch, and a live end-to-end socket session. *)

let qos_a = Qos.paper_spec ~increment:100
let qos_b = Qos.make ~utility:0.7 ~b_min:200 ~b_max:400 ~increment:50 ()

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let roundtrip_request req =
  let doc = Serve_proto.request_to_json ~id:7 req in
  (* through the printer too: the wire carries strings, not Jsonx. *)
  let doc = Jsonx.of_string (Jsonx.to_string doc) in
  match Serve_proto.request_of_json doc with
  | Error msg -> Alcotest.failf "request did not decode: %s" msg
  | Ok (id, req') ->
    Alcotest.(check int) "id" 7 id;
    Alcotest.(check bool) "request round-trips" true (req = req')

let all_requests : Serve_proto.request list =
  [
    Admit { src = 1; dst = 3; qos = qos_a };
    Teardown { channel = 42 };
    Change_qos { channel = 42; qos = qos_b };
    Fail { edge = 5 };
    Repair { edge = 5 };
    Set_auto true;
    Set_auto false;
    Redistribute;
    Stats;
    Snapshot;
    Metrics;
    Subscribe `Trace;
    Subscribe `Heartbeat;
    Ping;
    Shutdown;
  ]

let test_request_roundtrip () = List.iter roundtrip_request all_requests

let roundtrip_response resp =
  let doc = Serve_proto.response_to_json ~id:9 resp in
  let doc = Jsonx.of_string (Jsonx.to_string doc) in
  match Serve_proto.response_of_json doc with
  | Error msg -> Alcotest.failf "response did not decode: %s" msg
  | Ok (id, resp') ->
    Alcotest.(check int) "id" 9 id;
    Alcotest.(check bool) "response round-trips" true (resp = resp')

let all_responses : Serve_proto.response list =
  [
    Admitted { channel = 3; level = 2 };
    Admit_rejected { reason = "no_backup_route" };
    Torn_down { channel = 3 };
    Qos_changed { channel = 3; accepted = false };
    Edge_failed
      {
        edge = 4;
        fresh = true;
        recoveries =
          [
            { rw_channel = 1; rw_outcome = `Switched; rw_reprotected = true };
            { rw_channel = 2; rw_outcome = `Dropped; rw_reprotected = false };
            { rw_channel = 5; rw_outcome = `Restored; rw_reprotected = false };
            { rw_channel = 6; rw_outcome = `Backup_lost; rw_reprotected = true };
          ];
      };
    Edge_repaired { edge = 4; was_failed = true };
    Auto_set { on = false };
    Redistributed;
    Stats_reply
      {
        live = 10;
        total_reserved = 1500;
        average_kbps = 150.;
        dropped = 1;
        failed_edges = 2;
        requests = 99;
      };
    Snapshot_reply (Jsonx.Obj [ ("ev", Jsonx.String "snapshot") ]);
    Metrics_reply (Jsonx.Obj [ ("counters", Jsonx.Obj []) ]);
    Subscribed { stream = "trace" };
    Pong;
    Shutting_down;
    Error_reply { message = "unknown channel 3" };
  ]

let test_response_roundtrip () = List.iter roundtrip_response all_responses

let expect_request_error name line =
  match Serve_proto.request_of_json (Jsonx.of_string line) with
  | Ok _ -> Alcotest.failf "%s decoded but should not" name
  | Error _ -> ()

let test_request_rejects_malformed () =
  expect_request_error "missing id" {|{"req":"ping"}|};
  expect_request_error "missing verb" {|{"id":1}|};
  expect_request_error "unknown verb" {|{"id":1,"req":"frobnicate"}|};
  expect_request_error "admit without qos" {|{"id":1,"req":"admit","src":0,"dst":1}|};
  expect_request_error "unknown stream" {|{"id":1,"req":"subscribe","stream":"x"}|};
  (* QoS is validated at the protocol boundary. *)
  expect_request_error "b_min > b_max"
    {|{"id":1,"req":"admit","src":0,"dst":1,"qos":{"b_min":300,"b_max":100,"increment":50}}|};
  expect_request_error "too many levels"
    {|{"id":1,"req":"admit","src":0,"dst":1,"qos":{"b_min":1,"b_max":1000000,"increment":1}}|}

let test_qos_utility_defaults () =
  match
    Serve_proto.request_of_json
      (Jsonx.of_string
         {|{"id":1,"req":"admit","src":0,"dst":1,"qos":{"b_min":100,"b_max":300,"increment":100}}|})
  with
  | Ok (_, Serve_proto.Admit { qos; _ }) ->
    Alcotest.(check (float 0.)) "utility defaults to 1" 1.0 qos.Qos.utility
  | Ok _ -> Alcotest.fail "decoded to a non-admit request"
  | Error msg -> Alcotest.failf "did not decode: %s" msg

let test_is_push () =
  let push = Jsonx.of_string {|{"t":1.0,"ev":"admit","channel":3}|} in
  let reply = Jsonx.of_string {|{"id":3,"ok":true,"re":"pong"}|} in
  Alcotest.(check bool) "event line is a push" true (Serve_proto.is_push push);
  Alcotest.(check bool) "reply is not a push" false (Serve_proto.is_push reply)

(* ------------------------------------------------------------------ *)
(* Fuzz-op bridge                                                      *)

let test_op_bridge_roundtrip () =
  let ops =
    [
      Op.Admit { src = 2; dst = 5; qos = 1 };
      Op.Terminate 3;
      Op.Change_qos (3, 2);
      Op.Fail 4;
      Op.Repair 4;
      Op.Set_auto false;
      Op.Set_auto true;
      Op.Redistribute_all;
    ]
  in
  (* Reduction is lossy (the raw draws are folded modulo the state), so
     the invertible direction is request -> op -> request: printing a
     reduced request back into the op language and reducing it again on
     the same state must reach the same request (a fixpoint). *)
  let live = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  let reduce op =
    Serve_proto.request_of_op ~nodes:100 ~edges:50 ~live ~failed:[] op
  in
  List.iter
    (fun op ->
      match reduce op with
      | None -> Alcotest.failf "op reduced to None: %s" (Op.to_string op)
      | Some req -> (
        match Serve_proto.op_of_request ~nodes:100 req with
        | None -> Alcotest.failf "request did not print back: %s" (Op.to_string op)
        | Some op' ->
          Alcotest.(check bool)
            (Printf.sprintf "bridge fixpoint for %s" (Op.to_string op))
            true
            (reduce op' = Some req)))
    ops

let test_op_bridge_noops () =
  let none op ~nodes ~edges ~live ~failed =
    match Serve_proto.request_of_op ~nodes ~edges ~live ~failed op with
    | None -> ()
    | Some _ -> Alcotest.failf "expected a no-op: %s" (Op.to_string op)
  in
  none (Op.Terminate 3) ~nodes:10 ~edges:5 ~live:[] ~failed:[];
  none (Op.Change_qos (3, 1)) ~nodes:10 ~edges:5 ~live:[] ~failed:[];
  none (Op.Fail 3) ~nodes:10 ~edges:0 ~live:[] ~failed:[];
  none (Op.Admit { src = 0; dst = 0; qos = 0 }) ~nodes:1 ~edges:0 ~live:[] ~failed:[]

let test_op_bridge_modular_reduction () =
  (* Same reduction as Fuzz.replay: src mod n, dst skewed off src, nth
     of the sorted live list, nth of the failed list. *)
  (match
     Serve_proto.request_of_op ~nodes:10 ~edges:5 ~live:[] ~failed:[]
       (Op.Admit { src = 13; dst = 22; qos = 0 })
   with
  | Some (Serve_proto.Admit { src; dst; _ }) ->
    Alcotest.(check int) "src = 13 mod 10" 3 src;
    Alcotest.(check int) "dst = (3 + 1 + (22 mod 9)) mod 10" 8 dst
  | _ -> Alcotest.fail "admit did not reduce");
  (match
     Serve_proto.request_of_op ~nodes:10 ~edges:5 ~live:[ 10; 20; 30 ] ~failed:[]
       (Op.Terminate 7)
   with
  | Some (Serve_proto.Teardown { channel }) ->
    Alcotest.(check int) "live.(7 mod 3)" 20 channel
  | _ -> Alcotest.fail "terminate did not reduce");
  (match
     Serve_proto.request_of_op ~nodes:10 ~edges:8 ~live:[] ~failed:[ 2; 6 ]
       (Op.Repair 3)
   with
  | Some (Serve_proto.Repair { edge }) ->
    Alcotest.(check int) "failed.(3 mod 2)" 6 edge
  | _ -> Alcotest.fail "repair did not reduce");
  match
    Serve_proto.request_of_op ~nodes:10 ~edges:8 ~live:[] ~failed:[] (Op.Repair 11)
  with
  | Some (Serve_proto.Repair { edge }) ->
    Alcotest.(check int) "healthy no-op repair: 11 mod 8" 3 edge
  | _ -> Alcotest.fail "repair on healthy net did not reduce"

(* Replaying a generated fuzz script through the wire bridge and broker
   must walk the same state trajectory as [Fuzz.replay] itself. *)
let test_op_bridge_matches_fuzz_replay () =
  let cfg = Fuzz.config ~family:Fuzz.Waxman ~seed:42 ~ops:400 () in
  let ops = Fuzz.gen_ops cfg in
  let reference = Fuzz.replay cfg ops in
  (match reference.Fuzz.violation with
  | Some v -> Alcotest.failf "reference replay violated: %s" v.Fuzz.message
  | None -> ());
  let g = Fuzz.topology cfg in
  let net =
    Net_state.create ~multiplexing:cfg.Fuzz.multiplexing
      ~capacity:cfg.Fuzz.capacity g
  in
  let config =
    Drcomm.Config.make ~policy:cfg.Fuzz.policy ~require_backup:false
      ~with_backups:(cfg.Fuzz.backups_per_connection > 0)
      ~backups_per_connection:(max 1 cfg.Fuzz.backups_per_connection)
      ~restore_on_failure:cfg.Fuzz.restore_on_failure ()
  in
  let broker = Serve_broker.create ~config ~obs:(Obs.create ()) net in
  let nodes = Graph.node_count g and edges = Graph.edge_count g in
  Array.iter
    (fun op ->
      match
        Serve_proto.request_of_op ~nodes ~edges
          ~live:(Serve_broker.live_channels broker)
          ~failed:(Serve_broker.failed_edges broker)
          op
      with
      | None -> ()
      | Some req -> (
        match Serve_broker.dispatch broker req with
        | Serve_proto.Error_reply { message } ->
          Alcotest.failf "dispatch errored on %s: %s" (Op.to_string op) message
        | _ -> ()))
    ops;
  let svc = Serve_broker.service broker in
  Alcotest.(check int)
    "live connections match" reference.Fuzz.stats.Fuzz.live (Drcomm.count svc);
  Alcotest.(check int)
    "drops match" reference.Fuzz.stats.Fuzz.drops
    (Drcomm.dropped_connections svc);
  Drcomm.check_invariants svc

(* ------------------------------------------------------------------ *)
(* Broker dispatch                                                     *)

(* A 4-cycle: every pair has a 2-edge disjoint backup path. *)
let ring_net () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 2 3);
  ignore (Graph.add_edge g 3 0);
  Net_state.create ~capacity:1000 g

let admit_ok broker ~src ~dst =
  match
    Serve_broker.dispatch broker (Serve_proto.Admit { src; dst; qos = qos_a })
  with
  | Serve_proto.Admitted { channel; _ } -> channel
  | resp ->
    Alcotest.failf "admit did not succeed: %s"
      (Jsonx.to_string (Serve_proto.response_to_json ~id:0 resp))

let test_broker_lifecycle () =
  let broker = Serve_broker.create ~obs:(Obs.create ()) (ring_net ()) in
  let ch = admit_ok broker ~src:0 ~dst:2 in
  (match Serve_broker.dispatch broker Serve_proto.Stats with
  | Serve_proto.Stats_reply { live; total_reserved; requests; _ } ->
    Alcotest.(check int) "one live connection" 1 live;
    Alcotest.(check bool) "bandwidth reserved" true (total_reserved > 0);
    Alcotest.(check int) "stats is the 2nd request" 2 requests
  | _ -> Alcotest.fail "stats reply expected");
  (match
     Serve_broker.dispatch broker
       (Serve_proto.Change_qos { channel = ch; qos = qos_b })
   with
  | Serve_proto.Qos_changed { channel; accepted } ->
    Alcotest.(check int) "same channel" ch channel;
    Alcotest.(check bool) "chqos accepted" true accepted
  | _ -> Alcotest.fail "qos_changed reply expected");
  (match Serve_broker.dispatch broker (Serve_proto.Teardown { channel = ch }) with
  | Serve_proto.Torn_down { channel } -> Alcotest.(check int) "torn down" ch channel
  | _ -> Alcotest.fail "torn_down reply expected");
  match Serve_broker.dispatch broker (Serve_proto.Teardown { channel = ch }) with
  | Serve_proto.Error_reply _ -> ()
  | _ -> Alcotest.fail "tearing down a dead channel must be an error reply"

let test_broker_rejections_are_replies () =
  let broker = Serve_broker.create ~obs:(Obs.create ()) (ring_net ()) in
  (* Out-of-range nodes, self-loops, unknown channels, out-of-range
     edges: all wire-expressible errors, never exceptions. *)
  let is_error req =
    match Serve_broker.dispatch broker req with
    | Serve_proto.Error_reply _ -> ()
    | _ ->
      Alcotest.failf "expected an error reply for %s"
        (Jsonx.to_string (Serve_proto.request_to_json ~id:0 req))
  in
  is_error (Serve_proto.Admit { src = 0; dst = 9; qos = qos_a });
  is_error (Serve_proto.Admit { src = -1; dst = 2; qos = qos_a });
  is_error (Serve_proto.Admit { src = 2; dst = 2; qos = qos_a });
  is_error (Serve_proto.Teardown { channel = 999 });
  is_error (Serve_proto.Change_qos { channel = 999; qos = qos_a });
  is_error (Serve_proto.Fail { edge = 77 });
  is_error (Serve_proto.Repair { edge = -1 });
  is_error (Serve_proto.Subscribe `Trace);
  is_error Serve_proto.Shutdown

let test_broker_capacity_rejection_is_ok_reply () =
  let g = Graph.create 2 in
  ignore (Graph.add_edge g 0 1);
  (* Single edge, no disjoint backup: require the backup and every
     admit is rejected — as a well-formed [rejected] reply. *)
  let net = Net_state.create ~capacity:1000 g in
  let config = Drcomm.Config.make ~require_backup:true () in
  let broker = Serve_broker.create ~config ~obs:(Obs.create ()) net in
  match
    Serve_broker.dispatch broker (Serve_proto.Admit { src = 0; dst = 1; qos = qos_a })
  with
  | Serve_proto.Admit_rejected { reason } ->
    Alcotest.(check string) "backup is the bottleneck" "no_backup_route" reason
  | _ -> Alcotest.fail "expected an admission rejection"

let test_broker_failure_recovery () =
  let broker = Serve_broker.create ~obs:(Obs.create ()) (ring_net ()) in
  let ch = admit_ok broker ~src:0 ~dst:1 in
  (* Fail the only edge of the primary path: the backup (0-3-2-1)
     activates. *)
  (match Serve_broker.dispatch broker (Serve_proto.Fail { edge = 0 }) with
  | Serve_proto.Edge_failed { edge; fresh; recoveries } ->
    Alcotest.(check int) "edge echoes" 0 edge;
    Alcotest.(check bool) "fresh failure" true fresh;
    (match recoveries with
    | [ r ] ->
      Alcotest.(check int) "victim is the admitted channel" ch r.Serve_proto.rw_channel;
      Alcotest.(check bool)
        "switched to backup" true
        (r.Serve_proto.rw_outcome = `Switched)
    | l -> Alcotest.failf "expected one recovery, got %d" (List.length l))
  | _ -> Alcotest.fail "edge_failed reply expected");
  (* Idempotent re-failure is not fresh and recovers nothing. *)
  (match Serve_broker.dispatch broker (Serve_proto.Fail { edge = 0 }) with
  | Serve_proto.Edge_failed { fresh; recoveries; _ } ->
    Alcotest.(check bool) "not fresh" false fresh;
    Alcotest.(check int) "no recoveries" 0 (List.length recoveries)
  | _ -> Alcotest.fail "edge_failed reply expected");
  (match Serve_broker.dispatch broker (Serve_proto.Repair { edge = 0 }) with
  | Serve_proto.Edge_repaired { was_failed; _ } ->
    Alcotest.(check bool) "was failed" true was_failed
  | _ -> Alcotest.fail "edge_repaired reply expected");
  (* The switched channel is still addressable over the wire. *)
  match Serve_broker.dispatch broker (Serve_proto.Teardown { channel = ch }) with
  | Serve_proto.Torn_down _ -> ()
  | _ -> Alcotest.fail "survivor must still tear down"

let test_broker_snapshot_and_metrics () =
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  let broker = Serve_broker.create ~obs (ring_net ()) in
  ignore (admit_ok broker ~src:0 ~dst:2);
  (match Serve_broker.dispatch broker Serve_proto.Snapshot with
  | Serve_proto.Snapshot_reply doc ->
    (match Option.bind (Jsonx.member "ev" doc) Jsonx.to_str with
    | Some ev -> Alcotest.(check string) "snapshot event" "snapshot" ev
    | None -> Alcotest.fail "snapshot reply has no \"ev\"");
    (match Option.bind (Jsonx.member "live" doc) Jsonx.to_int with
    | Some live -> Alcotest.(check int) "snapshot sees the connection" 1 live
    | None -> Alcotest.fail "snapshot reply has no \"live\"")
  | _ -> Alcotest.fail "snapshot reply expected");
  match Serve_broker.dispatch broker Serve_proto.Metrics with
  | Serve_proto.Metrics_reply doc ->
    (* The broker's own request counter is served back. *)
    let counters = Jsonx.member "counters" doc in
    Alcotest.(check bool) "metrics doc has counters" true (counters <> None)
  | _ -> Alcotest.fail "metrics reply expected"

(* ------------------------------------------------------------------ *)
(* Live socket session                                                 *)

let with_server f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "drqos-serve-test-%d.sock" (Unix.getpid ()))
  in
  let served =
    Domain.spawn (fun () -> Serve_server.run ~wall_every:0.05 (`Unix path) (ring_net ()))
  in
  (* [join] waits for the server to finish shutting down — assertions
     about post-shutdown state (the socket file, say) must run after it,
     not merely after the [Shutting_down] reply arrives. *)
  let joined = ref false in
  let join () =
    if not !joined then begin
      joined := true;
      ignore (Domain.join served)
    end
  in
  Fun.protect ~finally:join (fun () -> f path join)

let test_socket_session () =
  with_server (fun path join ->
      let c = Serve_client.connect ~retries:50 (`Unix path) in
      (match Serve_client.request c Serve_proto.Ping with
      | Serve_proto.Pong -> ()
      | _ -> Alcotest.fail "ping did not pong");
      let ch =
        match
          Serve_client.request c (Serve_proto.Admit { src = 0; dst = 2; qos = qos_a })
        with
        | Serve_proto.Admitted { channel; _ } -> channel
        | _ -> Alcotest.fail "admit over the wire failed"
      in
      (* A second client sees the same broker state. *)
      let c2 = Serve_client.connect (`Unix path) in
      (match Serve_client.request c2 Serve_proto.Stats with
      | Serve_proto.Stats_reply { live; _ } ->
        Alcotest.(check int) "second client sees the connection" 1 live
      | _ -> Alcotest.fail "stats over the wire failed");
      (* c2 subscribes to the trace stream; c's next mutation is pushed. *)
      (match Serve_client.request c2 (Serve_proto.Subscribe `Trace) with
      | Serve_proto.Subscribed { stream } ->
        Alcotest.(check string) "subscribed to trace" "trace" stream
      | _ -> Alcotest.fail "subscribe failed");
      (match Serve_client.request c (Serve_proto.Teardown { channel = ch }) with
      | Serve_proto.Torn_down _ -> ()
      | _ -> Alcotest.fail "teardown over the wire failed");
      (* The push was broadcast before c's teardown reply was written;
         a ping on c2 forces its queue to drain. *)
      (match Serve_client.request c2 Serve_proto.Ping with
      | Serve_proto.Pong -> ()
      | _ -> Alcotest.fail "ping did not pong");
      let pushes = Serve_client.pushes c2 in
      Alcotest.(check bool) "a trace event was pushed" true (pushes <> []);
      Alcotest.(check bool)
        "pushes satisfy the framing rule" true
        (List.for_all Serve_proto.is_push pushes);
      let kinds =
        List.filter_map (fun d -> Option.bind (Jsonx.member "ev" d) Jsonx.to_str) pushes
      in
      Alcotest.(check bool)
        "the terminate event reached the subscriber" true
        (List.mem "terminate" kinds);
      Serve_client.close c;
      (match Serve_client.request c2 Serve_proto.Shutdown with
      | Serve_proto.Shutting_down -> ()
      | _ -> Alcotest.fail "shutdown not acknowledged");
      Serve_client.close c2;
      join ();
      Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists path))

let test_socket_heartbeat_push () =
  with_server (fun path _join ->
      let c = Serve_client.connect ~retries:50 (`Unix path) in
      (match Serve_client.request c (Serve_proto.Subscribe `Heartbeat) with
      | Serve_proto.Subscribed { stream } ->
        Alcotest.(check string) "subscribed" "heartbeat" stream
      | _ -> Alcotest.fail "subscribe failed");
      (* Outlive a couple of 0.05 s cadences, then drain. *)
      Unix.sleepf 0.2;
      (match Serve_client.request c Serve_proto.Ping with
      | Serve_proto.Pong -> ()
      | _ -> Alcotest.fail "ping did not pong");
      let hbs =
        List.filter_map
          (fun d -> Option.bind (Jsonx.member "ev" d) Jsonx.to_str)
          (Serve_client.pushes c)
      in
      Alcotest.(check bool) "a heartbeat arrived" true (List.mem "heartbeat" hbs);
      (match Serve_client.request c Serve_proto.Shutdown with
      | Serve_proto.Shutting_down -> ()
      | _ -> Alcotest.fail "shutdown not acknowledged");
      Serve_client.close c)

let test_socket_garbage_line () =
  with_server (fun path _join ->
      let c = Serve_client.connect ~retries:50 (`Unix path) in
      (* Raw socket abuse: an undecodable line must produce an id-0
         error reply, not kill the connection. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc "this is not json\n{\"id\":5,\"req\":\"ping\"}\n";
      flush oc;
      let first = Jsonx.of_string (input_line ic) in
      (match Serve_proto.response_of_json first with
      | Ok (0, Serve_proto.Error_reply _) -> ()
      | _ -> Alcotest.fail "garbage line must yield an id-0 error reply");
      let second = Jsonx.of_string (input_line ic) in
      (match Serve_proto.response_of_json second with
      | Ok (5, Serve_proto.Pong) -> ()
      | _ -> Alcotest.fail "the connection must survive the garbage");
      Unix.close fd;
      (match Serve_client.request c Serve_proto.Shutdown with
      | Serve_proto.Shutting_down -> ()
      | _ -> Alcotest.fail "shutdown not acknowledged");
      Serve_client.close c)

(* Regression for the event-loop blocking fix (lint R8): replies and
   broadcasts are queued per connection and written by the select loop,
   so a subscriber that stops reading stalls only itself.  Once its
   backlog passes max_pending_bytes it is reaped, while a responsive
   client on the same daemon keeps getting replies throughout. *)
let test_socket_slow_subscriber_reaped () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "drqos-serve-slow-%d.sock" (Unix.getpid ()))
  in
  let served =
    Domain.spawn (fun () ->
        Serve_server.run ~wall_every:10. ~max_pending_bytes:2048 (`Unix path)
          (ring_net ()))
  in
  Fun.protect ~finally:(fun () -> ignore (Domain.join served))
  @@ fun () ->
  (* The stalled subscriber: asks for the trace stream, then never reads
     its socket again. *)
  let s = Serve_client.connect ~retries:50 (`Unix path) in
  (match Serve_client.request s (Serve_proto.Subscribe `Trace) with
  | Serve_proto.Subscribed _ -> ()
  | _ -> Alcotest.fail "subscribe failed");
  let reaped_count c =
    match Serve_client.request c Serve_proto.Metrics with
    | Serve_proto.Metrics_reply doc ->
      Option.value ~default:0
        (Option.bind
           (Option.bind (Jsonx.member "counters" doc)
              (Jsonx.member "serve.reaped"))
           Jsonx.to_int)
    | _ -> Alcotest.fail "metrics request failed"
  in
  (* A responsive client hammers mutations; each one is pushed to the
     subscriber, whose backlog (kernel buffer, then output queue) can
     only grow until the cap cuts it loose. *)
  let c = Serve_client.connect (`Unix path) in
  let reaped = ref false in
  let i = ref 0 in
  while (not !reaped) && !i < 20_000 do
    incr i;
    (match
       Serve_client.request c (Serve_proto.Admit { src = 0; dst = 2; qos = qos_a })
     with
    | Serve_proto.Admitted { channel; _ } -> (
      match Serve_client.request c (Serve_proto.Teardown { channel }) with
      | Serve_proto.Torn_down _ -> ()
      | _ -> Alcotest.fail "teardown failed mid-hammer")
    | _ -> Alcotest.fail "admit failed mid-hammer");
    if !i mod 50 = 0 then reaped := reaped_count c > 0
  done;
  Alcotest.(check bool) "stalled subscriber reaped at the backlog cap" true
    !reaped;
  (* The responsive client never noticed. *)
  (match Serve_client.request c Serve_proto.Ping with
  | Serve_proto.Pong -> ()
  | _ -> Alcotest.fail "responsive client lost its connection");
  (match Serve_client.request c Serve_proto.Shutdown with
  | Serve_proto.Shutting_down -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Serve_client.close c;
  Serve_client.close s

(* ------------------------------------------------------------------ *)
(* Request tracing                                                     *)

let test_trace_field_roundtrip () =
  let ctx = { Reqtrace.rid = 4242; t_sched = 1.5 } in
  List.iter
    (fun req ->
      let doc =
        Jsonx.of_string
          (Jsonx.to_string (Serve_proto.request_to_json ~trace:ctx ~id:7 req))
      in
      (* The stamped line still decodes to the same request... *)
      (match Serve_proto.request_of_json doc with
      | Ok (7, req') ->
        Alcotest.(check bool) "request unchanged by trace field" true (req = req')
      | Ok _ -> Alcotest.fail "id changed"
      | Error msg -> Alcotest.failf "stamped request did not decode: %s" msg);
      (* ...and the context rides along. *)
      match Serve_proto.trace_ctx_of_json doc with
      | Some c ->
        Alcotest.(check int) "rid" 4242 c.Reqtrace.rid;
        Alcotest.(check (float 0.)) "t_sched" 1.5 c.Reqtrace.t_sched
      | None -> Alcotest.fail "trace context lost on the wire")
    all_requests;
  (* Unstamped lines and malformed contexts read as None — tracing is
     best-effort metadata, never a decode error. *)
  let none line =
    Alcotest.(check bool) line true
      (Serve_proto.trace_ctx_of_json (Jsonx.of_string line) = None)
  in
  none {|{"id":1,"req":"ping"}|};
  none {|{"id":1,"req":"ping","trace":{"rid":3}}|};
  none {|{"id":1,"req":"ping","trace":{"t_sched":0.5}}|};
  none {|{"id":1,"req":"ping","trace":{"rid":-1,"t_sched":0.5}}|};
  none {|{"id":1,"req":"ping","trace":7}|}

let test_verb_index_bridge () =
  List.iter
    (fun req ->
      let verb = Serve_proto.request_verb req in
      (* request_verb is the wire's "req" field... *)
      (match
         Jsonx.member "req" (Serve_proto.request_to_json ~id:1 req)
       with
      | Some (Jsonx.String wire) ->
        Alcotest.(check string) "verb matches the wire" wire verb
      | _ -> Alcotest.fail "request line has no req field");
      (* ...and verb_of_index inverts request_index. *)
      Alcotest.(check string)
        ("index inverts for " ^ verb)
        verb
        (Serve_proto.verb_of_index (Serve_proto.request_index req)))
    all_requests;
  Alcotest.(check string) "undecodable pseudo-verb" "undecodable"
    (Serve_proto.verb_of_index Serve_proto.undecodable_index);
  Alcotest.(check string) "out-of-range prints" "verb#42"
    (Serve_proto.verb_of_index 42)

let test_dispatch_timed () =
  let broker = Serve_broker.create ~obs:(Obs.create ()) (ring_net ()) in
  let resp, service_s, redist_s =
    Serve_broker.dispatch_timed broker
      (Serve_proto.Admit { src = 0; dst = 2; qos = qos_a })
  in
  (match resp with
  | Serve_proto.Admitted _ -> ()
  | _ -> Alcotest.fail "timed dispatch must return the dispatch reply");
  Alcotest.(check bool) "service time non-negative" true (service_s >= 0.);
  Alcotest.(check bool) "redistribution time non-negative" true (redist_s >= 0.);
  (* A pure read never flushes a redistribution. *)
  let _, s2, r2 = Serve_broker.dispatch_timed broker Serve_proto.Ping in
  Alcotest.(check bool) "ping service non-negative" true (s2 >= 0.);
  Alcotest.(check (float 0.)) "ping flushes nothing" 0. r2

let test_socket_stage_records () =
  let tmp name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "drqos-reqtrace-%d-%s" (Unix.getpid ()) name)
  in
  let path = tmp "sock" and trace_file = tmp "trace.jsonl" in
  let served =
    Domain.spawn (fun () ->
        Serve_server.run ~wall_every:0.05 ~slo:1e9 ~trace_file (`Unix path)
          (ring_net ()))
  in
  Fun.protect ~finally:(fun () -> ignore (Domain.join served))
  @@ fun () ->
  let c = Serve_client.connect ~retries:50 (`Unix path) in
  let traced rid req =
    Serve_client.request ~trace:{ Reqtrace.rid; t_sched = 0.1 *. float_of_int rid }
      c req
  in
  (match traced 1 (Serve_proto.Admit { src = 0; dst = 2; qos = qos_a }) with
  | Serve_proto.Admitted _ -> ()
  | _ -> Alcotest.fail "traced admit failed");
  (match traced 2 Serve_proto.Stats with
  | Serve_proto.Stats_reply _ -> ()
  | _ -> Alcotest.fail "traced stats failed");
  (* An untraced request must still be recorded, under a negative
     server-assigned rid. *)
  (match Serve_client.request c Serve_proto.Ping with
  | Serve_proto.Pong -> ()
  | _ -> Alcotest.fail "untraced ping failed");
  (match Serve_client.request c Serve_proto.Shutdown with
  | Serve_proto.Shutting_down -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Serve_client.close c;
  ignore (Domain.join served);
  let a = Analysis.of_file trace_file in
  Alcotest.(check (list string)) "trace is self-consistent" []
    (Analysis.request_check a);
  let reqs = Analysis.requests a in
  let find rid =
    match List.find_opt (fun r -> r.Analysis.rq_rid = rid) reqs with
    | Some r -> r
    | None -> Alcotest.failf "rid %d missing from the trace" rid
  in
  let admit = find 1 in
  Alcotest.(check string) "verb travels" "admit" admit.Analysis.rq_verb;
  Alcotest.(check bool) "complete" true admit.Analysis.rq_complete;
  let stage_names = List.map fst admit.Analysis.rq_stages in
  List.iter
    (fun st ->
      let name = Reqtrace.stage_name st in
      Alcotest.(check bool) ("stage " ^ name ^ " recorded") true
        (List.mem name stage_names))
    Reqtrace.all_stages;
  let stage_sum =
    List.fold_left (fun acc (_, s) -> acc +. s) 0. admit.Analysis.rq_stages
  in
  Alcotest.(check bool) "total is the stage sum" true
    (Float.abs (stage_sum -. admit.Analysis.rq_total_s) < 1e-9);
  ignore (find 2);
  Alcotest.(check bool)
    "untraced requests get negative server rids" true
    (List.exists
       (fun r -> r.Analysis.rq_rid < 0 && r.Analysis.rq_verb = "ping")
       reqs);
  Sys.remove trace_file

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "every request round-trips" `Quick
            test_request_roundtrip;
          Alcotest.test_case "every response round-trips" `Quick
            test_response_roundtrip;
          Alcotest.test_case "malformed requests are rejected" `Quick
            test_request_rejects_malformed;
          Alcotest.test_case "qos utility defaults to 1" `Quick
            test_qos_utility_defaults;
          Alcotest.test_case "push framing rule" `Quick test_is_push;
        ] );
      ( "op-bridge",
        [
          Alcotest.test_case "bridge round-trips on identity state" `Quick
            test_op_bridge_roundtrip;
          Alcotest.test_case "no-op reductions" `Quick test_op_bridge_noops;
          Alcotest.test_case "modular reduction" `Quick
            test_op_bridge_modular_reduction;
          Alcotest.test_case "wire replay matches Fuzz.replay" `Slow
            test_op_bridge_matches_fuzz_replay;
        ] );
      ( "broker",
        [
          Alcotest.test_case "admit/chqos/teardown lifecycle" `Quick
            test_broker_lifecycle;
          Alcotest.test_case "bad requests become error replies" `Quick
            test_broker_rejections_are_replies;
          Alcotest.test_case "admission rejection is an ok reply" `Quick
            test_broker_capacity_rejection_is_ok_reply;
          Alcotest.test_case "failure recovery over the wire" `Quick
            test_broker_failure_recovery;
          Alcotest.test_case "snapshot and metrics requests" `Quick
            test_broker_snapshot_and_metrics;
        ] );
      ( "socket",
        [
          Alcotest.test_case "end-to-end session" `Slow test_socket_session;
          Alcotest.test_case "heartbeat subscription" `Slow
            test_socket_heartbeat_push;
          Alcotest.test_case "garbage line does not kill the connection" `Slow
            test_socket_garbage_line;
          Alcotest.test_case "slow subscriber is reaped, others unaffected"
            `Slow test_socket_slow_subscriber_reaped;
        ] );
      ( "reqtrace",
        [
          Alcotest.test_case "trace field round-trips" `Quick
            test_trace_field_roundtrip;
          Alcotest.test_case "verb/index bridge" `Quick test_verb_index_bridge;
          Alcotest.test_case "timed dispatch decomposition" `Quick
            test_dispatch_timed;
          Alcotest.test_case "stage records over the socket" `Slow
            test_socket_stage_records;
        ] );
    ]
