(* Tests for dense matrices and the direct solver. *)

let matf = Alcotest.float 1e-9

let test_create_zero () =
  let m = Matrix.create 3 4 in
  Alcotest.(check int) "rows" 3 (Matrix.rows m);
  Alcotest.(check int) "cols" 4 (Matrix.cols m);
  for i = 0 to 2 do
    for j = 0 to 3 do
      Alcotest.check matf "zero" 0. (Matrix.get m i j)
    done
  done

let test_set_get () =
  let m = Matrix.create 2 2 in
  Matrix.set m 0 1 3.5;
  Matrix.add_to m 0 1 1.5;
  Alcotest.check matf "set+add" 5. (Matrix.get m 0 1);
  Alcotest.check matf "untouched" 0. (Matrix.get m 1 0)

let test_out_of_range () =
  let m = Matrix.create 2 2 in
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Matrix: index (2, 0) out of 2x2") (fun () ->
      ignore (Matrix.get m 2 0))

let test_identity () =
  let m = Matrix.identity 3 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.check matf "delta" (if i = j then 1. else 0.) (Matrix.get m i j)
    done
  done

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged rows")
    (fun () -> ignore (Matrix.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_roundtrip () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (array (float 0.)))) "roundtrip" a
    (Matrix.to_arrays (Matrix.of_arrays a))

let test_transpose () =
  let m = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let mt = Matrix.transpose m in
  Alcotest.(check int) "rows" 3 (Matrix.rows mt);
  Alcotest.check matf "(0,1)" 4. (Matrix.get mt 0 1);
  Alcotest.(check bool) "involution" true (Matrix.equal m (Matrix.transpose mt))

let test_add_sub_scale () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_arrays [| [| 4.; 3. |]; [| 2.; 1. |] |] in
  let s = Matrix.add a b in
  Alcotest.(check bool) "a+b constant 5" true
    (Matrix.equal s (Matrix.of_arrays [| [| 5.; 5. |]; [| 5.; 5. |] |]));
  Alcotest.(check bool) "a+b-b = a" true (Matrix.equal a (Matrix.sub s b));
  Alcotest.(check bool) "2a = a+a" true
    (Matrix.equal (Matrix.scale 2. a) (Matrix.add a a))

let test_mul_known () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let expected = Matrix.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |] in
  Alcotest.(check bool) "product" true (Matrix.equal expected (Matrix.mul a b))

let test_mul_identity () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check bool) "aI = a" true (Matrix.equal a (Matrix.mul a (Matrix.identity 2)));
  Alcotest.(check bool) "Ia = a" true (Matrix.equal a (Matrix.mul (Matrix.identity 2) a))

let test_mul_dimension_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Matrix.mul: dimension mismatch")
    (fun () -> ignore (Matrix.mul (Matrix.create 2 3) (Matrix.create 2 3)))

let test_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array matf)) "m v" [| 5.; 11. |] (Matrix.mul_vec a [| 1.; 2. |]);
  Alcotest.(check (array matf)) "v m" [| 7.; 10. |] (Matrix.vec_mul [| 1.; 2. |] a)

let test_row_sums () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array matf)) "row sums" [| 3.; 7. |] (Matrix.row_sums a)

let test_max_abs () =
  let a = Matrix.of_arrays [| [| 1.; -9. |]; [| 3.; 4. |] |] in
  Alcotest.check matf "max abs" 9. (Matrix.max_abs a)

(* --- Linsolve --- *)

let test_gaussian_2x2 () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linsolve.gaussian a [| 3.; 5. |] in
  Alcotest.check (Alcotest.float 1e-12) "x0" 0.8 x.(0);
  Alcotest.check (Alcotest.float 1e-12) "x1" 1.4 x.(1)

let test_gaussian_needs_pivoting () =
  (* Leading zero forces a row swap. *)
  let a = Matrix.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linsolve.gaussian a [| 2.; 3. |] in
  Alcotest.(check (array matf)) "swap solved" [| 3.; 2. |] x

let test_gaussian_singular () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Linsolve.Singular (fun () ->
      ignore (Linsolve.gaussian a [| 1.; 2. |]))

let test_gaussian_does_not_mutate () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 3.; 5. |] in
  ignore (Linsolve.gaussian a b);
  Alcotest.check matf "a intact" 2. (Matrix.get a 0 0);
  Alcotest.check matf "b intact" 3. b.(0)

let test_nullvector_two_state () =
  (* Generator of a 2-state chain with rates 1 (0->1) and 3 (1->0):
     pi = (3/4, 1/4). *)
  let q = Matrix.of_arrays [| [| -1.; 1. |]; [| 3.; -3. |] |] in
  let pi = Linsolve.solve_left_nullvector q in
  Alcotest.check (Alcotest.float 1e-12) "pi0" 0.75 pi.(0);
  Alcotest.check (Alcotest.float 1e-12) "pi1" 0.25 pi.(1)

let test_nullvector_sums_to_one () =
  let q =
    Matrix.of_arrays
      [| [| -2.; 1.; 1. |]; [| 1.; -1.; 0. |]; [| 0.5; 0.5; -1. |] |]
  in
  let pi = Linsolve.solve_left_nullvector q in
  Alcotest.check (Alcotest.float 1e-12) "normalised" 1. (Array.fold_left ( +. ) 0. pi);
  Array.iter (fun p -> Alcotest.(check bool) "non-negative" true (p >= 0.)) pi

let test_nullvector_reducible () =
  (* Two absorbing states: no unique stationary vector. *)
  let q = Matrix.of_arrays [| [| 0.; 0. |]; [| 0.; 0. |] |] in
  Alcotest.check_raises "reducible" Linsolve.Singular (fun () ->
      ignore (Linsolve.solve_left_nullvector q))

let test_nullvector_two_component_generator () =
  (* A generator whose chain splits into two irreducible components
     ({0,1} and {2,3}): every convex mix of the component stationaries
     solves pi Q = 0, so there is no unique answer and the solver must
     refuse rather than silently pick one.  (Regression: a reducible
     generator built from a disconnected topology reached the solver
     through the model pipeline.) *)
  let q =
    Matrix.of_arrays
      [|
        [| -1.; 1.; 0.; 0. |];
        [| 1.; -1.; 0.; 0. |];
        [| 0.; 0.; -2.; 2. |];
        [| 0.; 0.; 2.; -2. |];
      |]
  in
  Alcotest.check_raises "two components" Linsolve.Singular (fun () ->
      ignore (Linsolve.solve_left_nullvector q))

let test_residual () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 3.; 5. |] in
  let x = Linsolve.gaussian a b in
  Alcotest.(check bool) "small residual" true (Linsolve.residual a x b < 1e-12);
  Alcotest.(check bool) "wrong solution has residual" true
    (Linsolve.residual a [| 1.; 1. |] b > 0.1)

(* Random diagonally-dominant systems are well-conditioned: the solver
   must return small residuals on all of them. *)
let qcheck_solve_diag_dominant =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* entries = array_size (return (n * n)) (float_range (-1.) 1.) in
      let* b = array_size (return n) (float_range (-10.) 10.) in
      return (n, entries, b))
  in
  QCheck.Test.make ~name:"gaussian solves diagonally-dominant systems" ~count:200
    (QCheck.make gen)
    (fun (n, entries, b) ->
      let a = Matrix.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Matrix.set a i j entries.((i * n) + j)
        done;
        Matrix.set a i i (float_of_int n +. 1.)
      done;
      let x = Linsolve.gaussian a b in
      Linsolve.residual a x b < 1e-8)

let qcheck_transpose_involution =
  let gen =
    QCheck.Gen.(
      let* r = int_range 1 6 in
      let* c = int_range 1 6 in
      let* entries = array_size (return (r * c)) (float_range (-5.) 5.) in
      return (r, c, entries))
  in
  QCheck.Test.make ~name:"transpose involution" ~count:200 (QCheck.make gen)
    (fun (r, c, entries) ->
      let m = Matrix.create r c in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          Matrix.set m i j entries.((i * c) + j)
        done
      done;
      Matrix.equal m (Matrix.transpose (Matrix.transpose m)))

let () =
  Alcotest.run "linalg"
    [
      ( "matrix",
        [
          Alcotest.test_case "create zero" `Quick test_create_zero;
          Alcotest.test_case "set/get/add_to" `Quick test_set_get;
          Alcotest.test_case "bounds" `Quick test_out_of_range;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "ragged rejected" `Quick test_of_arrays_ragged;
          Alcotest.test_case "arrays roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "mul identity" `Quick test_mul_identity;
          Alcotest.test_case "mul mismatch" `Quick test_mul_dimension_mismatch;
          Alcotest.test_case "mul_vec / vec_mul" `Quick test_mul_vec;
          Alcotest.test_case "row sums" `Quick test_row_sums;
          Alcotest.test_case "max abs" `Quick test_max_abs;
        ] );
      ( "linsolve",
        [
          Alcotest.test_case "2x2" `Quick test_gaussian_2x2;
          Alcotest.test_case "pivoting" `Quick test_gaussian_needs_pivoting;
          Alcotest.test_case "singular" `Quick test_gaussian_singular;
          Alcotest.test_case "inputs not mutated" `Quick test_gaussian_does_not_mutate;
          Alcotest.test_case "two-state stationary" `Quick test_nullvector_two_state;
          Alcotest.test_case "stationary normalised" `Quick test_nullvector_sums_to_one;
          Alcotest.test_case "reducible chain" `Quick test_nullvector_reducible;
          Alcotest.test_case "two-component generator" `Quick
            test_nullvector_two_component_generator;
          Alcotest.test_case "residual" `Quick test_residual;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_solve_diag_dominant; qcheck_transpose_involution ] );
    ]
