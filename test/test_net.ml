(* Tests for the network domain layer: bandwidth, QoS specs, directed
   links, per-link reservation state, policies, and the run-time
   substrates (interval QoS, EDF). *)

let approx = Alcotest.float 1e-9

(* --- Bandwidth --- *)

let test_bandwidth_units () =
  Alcotest.(check int) "mbps" 10_000 (Bandwidth.mbps 10);
  Alcotest.check approx "to float" 0.5 (Bandwidth.to_float_mbps 500);
  Alcotest.(check int) "paper capacity" 10_000 Bandwidth.paper_link_capacity

let test_bandwidth_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bandwidth.kbps: negative")
    (fun () -> ignore (Bandwidth.kbps (-1)))

let test_bandwidth_pp () =
  Alcotest.(check string) "kbps" "350Kbps" (Format.asprintf "%a" Bandwidth.pp 350);
  Alcotest.(check string) "mbps" "10Mbps" (Format.asprintf "%a" Bandwidth.pp 10_000)

(* --- Qos --- *)

let paper50 = Qos.paper_spec ~increment:50
let paper100 = Qos.paper_spec ~increment:100

let test_qos_levels () =
  Alcotest.(check int) "9 states at 50K" 9 (Qos.levels paper50);
  Alcotest.(check int) "5 states at 100K" 5 (Qos.levels paper100)

let test_qos_level_bandwidth_roundtrip () =
  for i = 0 to 8 do
    let bw = Qos.bandwidth_of_level paper50 i in
    Alcotest.(check int) "grid" (100 + (i * 50)) bw;
    Alcotest.(check int) "roundtrip" i (Qos.level_of_bandwidth paper50 bw)
  done

let test_qos_off_grid () =
  Alcotest.check_raises "off grid"
    (Invalid_argument "Qos.level_of_bandwidth: 130 not on grid") (fun () ->
      ignore (Qos.level_of_bandwidth paper50 130))

let test_qos_validation () =
  Alcotest.check_raises "range not multiple"
    (Invalid_argument "Qos.make: range must be an integral number of increments")
    (fun () -> ignore (Qos.make ~b_min:100 ~b_max:250 ~increment:100 ()));
  Alcotest.check_raises "b_max < b_min" (Invalid_argument "Qos.make: b_max < b_min")
    (fun () -> ignore (Qos.make ~b_min:200 ~b_max:100 ~increment:50 ()))

let test_qos_single_value () =
  let q = Qos.single_value 300 in
  Alcotest.(check int) "one level" 1 (Qos.levels q);
  Alcotest.(check bool) "not elastic" false (Qos.is_elastic q);
  Alcotest.(check bool) "paper spec is elastic" true (Qos.is_elastic paper50)

(* --- Dirlink --- *)

let line_graph () =
  (* 0 - 1 - 2 - 3 *)
  let g = Graph.create 4 in
  let e0 = Graph.add_edge g 0 1 in
  let e1 = Graph.add_edge g 1 2 in
  let e2 = Graph.add_edge g 2 3 in
  (g, e0, e1, e2)

let test_dirlink_ids () =
  let g, e0, _, _ = line_graph () in
  Alcotest.(check int) "count" 6 (Dirlink.count g);
  let fwd = Dirlink.of_edge g ~edge:e0 ~src:0 in
  let bwd = Dirlink.of_edge g ~edge:e0 ~src:1 in
  Alcotest.(check int) "forward" 0 fwd;
  Alcotest.(check int) "backward" 1 bwd;
  Alcotest.(check int) "reverse involution" fwd (Dirlink.reverse bwd);
  Alcotest.(check int) "edge recovery" e0 (Dirlink.edge bwd);
  Alcotest.(check (pair int int)) "endpoints fwd" (0, 1) (Dirlink.endpoints g fwd);
  Alcotest.(check (pair int int)) "endpoints bwd" (1, 0) (Dirlink.endpoints g bwd)

let test_dirlink_of_path () =
  let g, _, _, _ = line_graph () in
  let p = Option.get (Paths.shortest_path g 3 0) in
  let dls = Dirlink.of_path g p in
  Alcotest.(check int) "three links" 3 (List.length dls);
  List.iter2
    (fun dl (src, dst) ->
      Alcotest.(check (pair int int)) "direction" (src, dst) (Dirlink.endpoints g dl))
    dls
    [ (3, 2); (2, 1); (1, 0) ]

let test_dirlink_shares_edge () =
  let g, e0, e1, _ = line_graph () in
  let fwd = [ Dirlink.of_edge g ~edge:e0 ~src:0 ] in
  let bwd = [ Dirlink.of_edge g ~edge:e0 ~src:1 ] in
  let other = [ Dirlink.of_edge g ~edge:e1 ~src:1 ] in
  Alcotest.(check bool) "opposite directions share" true (Dirlink.shares_edge fwd bwd);
  Alcotest.(check bool) "distinct edges do not" false (Dirlink.shares_edge fwd other)

(* --- Link_state --- *)

let test_link_reserve_release () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.reserve_primary l ~channel:1 ~b_min:100;
  Link_state.reserve_primary l ~channel:2 ~b_min:200;
  Alcotest.(check int) "total" 300 (Link_state.primary_total l);
  Alcotest.(check int) "min total" 300 (Link_state.primary_min_total l);
  Alcotest.(check int) "spare" 700 (Link_state.spare l);
  Link_state.release_primary l ~channel:1;
  Alcotest.(check int) "after release" 200 (Link_state.primary_total l);
  Alcotest.(check (option int)) "gone" None (Link_state.primary_reservation l ~channel:1);
  Link_state.check_invariant l

let test_link_double_reserve_rejected () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.reserve_primary l ~channel:1 ~b_min:100;
  Alcotest.check_raises "double"
    (Invalid_argument "Link_state.reserve_primary: channel already reserved here")
    (fun () -> Link_state.reserve_primary l ~channel:1 ~b_min:100)

let test_link_admission_uses_floors () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.reserve_primary l ~channel:1 ~b_min:300;
  (* Extras fill the link physically... *)
  Link_state.set_primary l ~channel:1 1000;
  Alcotest.(check int) "no spare" 0 (Link_state.spare l);
  (* ...but admission sees the reclaimable floor. *)
  Alcotest.(check bool) "admissible despite extras" true
    (Link_state.admissible_primary l ~b_min:700);
  Alcotest.(check bool) "but not beyond floors" false
    (Link_state.admissible_primary l ~b_min:701);
  (* Reserving without reclaiming extras must fail loudly. *)
  Alcotest.check_raises "reclaim first"
    (Invalid_argument "Link_state.reserve_primary: reclaim extras first") (fun () ->
      Link_state.reserve_primary l ~channel:2 ~b_min:700)

let test_link_set_primary_constraints () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.reserve_primary l ~channel:1 ~b_min:100;
  Link_state.set_primary l ~channel:1 900;
  Alcotest.(check (option int)) "upgraded" (Some 900)
    (Link_state.primary_reservation l ~channel:1);
  Alcotest.check_raises "below floor"
    (Invalid_argument "Link_state.set_primary: below floor") (fun () ->
      Link_state.set_primary l ~channel:1 50);
  Alcotest.check_raises "beyond capacity"
    (Invalid_argument "Link_state.set_primary: would exceed link capacity") (fun () ->
      Link_state.set_primary l ~channel:1 1001);
  Link_state.check_invariant l

let test_link_release_unknown () =
  let l = Link_state.create ~capacity:1000 () in
  Alcotest.check_raises "unknown" Not_found (fun () ->
      Link_state.release_primary l ~channel:9)

(* Backup multiplexing: two backups whose primaries are edge-disjoint
   share the pool; a third whose primary overlaps adds to it. *)
let test_backup_multiplexing () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.register_backup l ~channel:1 ~b_min:100 ~primary_edges:[ 7; 8 ];
  Alcotest.(check int) "one backup" 100 (Link_state.backup_pool l);
  (* Disjoint primary: multiplexes for free. *)
  Link_state.register_backup l ~channel:2 ~b_min:100 ~primary_edges:[ 9; 10 ];
  Alcotest.(check int) "still 100" 100 (Link_state.backup_pool l);
  (* Overlapping primary (edge 8): must add. *)
  Link_state.register_backup l ~channel:3 ~b_min:100 ~primary_edges:[ 8; 11 ];
  Alcotest.(check int) "grows to 200" 200 (Link_state.backup_pool l);
  Link_state.unregister_backup l ~channel:3;
  Alcotest.(check int) "shrinks back" 100 (Link_state.backup_pool l);
  Link_state.check_invariant l

let test_backup_pool_with_is_pure () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.register_backup l ~channel:1 ~b_min:100 ~primary_edges:[ 1 ];
  let predicted = Link_state.backup_pool_with l ~b_min:150 ~primary_edges:[ 1 ] in
  Alcotest.(check int) "prediction" 250 predicted;
  Alcotest.(check int) "state unchanged" 100 (Link_state.backup_pool l);
  Link_state.register_backup l ~channel:2 ~b_min:150 ~primary_edges:[ 1 ];
  Alcotest.(check int) "prediction was right" predicted (Link_state.backup_pool l)

let test_backup_no_multiplexing_mode () =
  let l = Link_state.create ~multiplexing:false ~capacity:1000 () in
  Link_state.register_backup l ~channel:1 ~b_min:100 ~primary_edges:[ 7 ];
  Link_state.register_backup l ~channel:2 ~b_min:100 ~primary_edges:[ 9 ];
  (* Disjoint primaries, but without multiplexing the pool is the sum. *)
  Alcotest.(check int) "plain sum" 200 (Link_state.backup_pool l)

let test_backup_blocks_admission () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.register_backup l ~channel:1 ~b_min:400 ~primary_edges:[ 1 ];
  Alcotest.(check int) "headroom" 600 (Link_state.reclaimable_headroom l);
  Alcotest.(check bool) "600 fits" true (Link_state.admissible_primary l ~b_min:600);
  Alcotest.(check bool) "601 does not" false (Link_state.admissible_primary l ~b_min:601)

let test_backup_pool_overflow_rejected () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.reserve_primary l ~channel:1 ~b_min:800;
  Alcotest.check_raises "pool too big"
    (Invalid_argument "Link_state.register_backup: pool does not fit") (fun () ->
      Link_state.register_backup l ~channel:2 ~b_min:300 ~primary_edges:[ 1 ])

let test_extras_borrow_backup_pool () =
  (* The paper's §2.2 point: inactive backup bandwidth is usable as
     extras. *)
  let l = Link_state.create ~capacity:1000 () in
  Link_state.register_backup l ~channel:9 ~b_min:500 ~primary_edges:[ 3 ];
  Link_state.reserve_primary l ~channel:1 ~b_min:100;
  Link_state.set_primary l ~channel:1 1000;
  (* 1000 reserved while the pool still guarantees 500: fine... *)
  Link_state.check_invariant l;
  Alcotest.(check bool) "guarantee holds" true (Link_state.guarantee_holds l);
  (* ...because the extras are reclaimable down to the floor. *)
  Alcotest.(check int) "headroom" 400 (Link_state.reclaimable_headroom l)

let test_force_reserve_for_activation () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.register_backup l ~channel:9 ~b_min:500 ~primary_edges:[ 3 ];
  Link_state.reserve_primary l ~channel:1 ~b_min:500;
  (* Normal admission is blocked by the pool... *)
  Alcotest.(check bool) "normal blocked" false
    (Link_state.admissible_primary l ~b_min:500);
  (* ...but activating the backup itself uses force (its bandwidth is the
     pool's). *)
  Link_state.unregister_backup l ~channel:9;
  Link_state.reserve_primary ~force:true l ~channel:9 ~b_min:500;
  Link_state.check_invariant l;
  Alcotest.(check int) "full" 1000 (Link_state.primary_total l)

let test_iter_and_counts () =
  let l = Link_state.create ~capacity:1000 () in
  Link_state.reserve_primary l ~channel:1 ~b_min:100;
  Link_state.reserve_primary l ~channel:2 ~b_min:150;
  Alcotest.(check int) "count" 2 (Link_state.primary_count l);
  let sum = ref 0 in
  Link_state.iter_primary_channels (fun _ bw -> sum := !sum + bw) l;
  Alcotest.(check int) "iter sums" 250 !sum;
  Alcotest.(check int) "list length" 2 (List.length (Link_state.primary_channels l))

(* Model-based soak for Link_state: apply random operations, mirroring
   them in a naive reference model, and compare every observable after
   each step.  The reference recomputes the multiplexed pool from scratch
   (max over failure edges of summed floors), which is the definition the
   incremental pool table must match. *)
let qcheck_link_state_model =
  QCheck.Test.make ~name:"link state matches naive reference model" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let capacity = 2000 in
      let l = Link_state.create ~capacity () in
      (* Reference state. *)
      let primaries = Hashtbl.create 8 (* ch -> (reserved, floor) *) in
      let backups = Hashtbl.create 8 (* ch -> (b_min, edges) *) in
      let ref_pool () =
        let by_edge = Hashtbl.create 8 in
        Hashtbl.iter
          (fun _ (b_min, edges) ->
            List.iter
              (fun e ->
                Hashtbl.replace by_edge e
                  (b_min + Option.value ~default:0 (Hashtbl.find_opt by_edge e)))
              edges)
          backups;
        Hashtbl.fold (fun _ v acc -> max v acc) by_edge 0
      in
      let ref_min_total () = Hashtbl.fold (fun _ (_, f) acc -> acc + f) primaries 0 in
      let ref_total () = Hashtbl.fold (fun _ (r, _) acc -> acc + r) primaries 0 in
      let ok = ref true in
      for step = 1 to 120 do
        let ch = Prng.int rng 6 in
        (match Prng.int rng 5 with
        | 0 ->
          (* reserve *)
          let b_min = 100 * (1 + Prng.int rng 4) in
          let fits =
            (not (Hashtbl.mem primaries ch))
            && ref_min_total () + ref_pool () + b_min <= capacity
            && ref_total () + b_min <= capacity
          in
          (match Link_state.reserve_primary l ~channel:ch ~b_min with
          | () ->
            if not fits then ok := false
            else Hashtbl.replace primaries ch (b_min, b_min)
          | exception Invalid_argument _ -> if fits then ok := false)
        | 1 -> (
          (* release *)
          match Link_state.release_primary l ~channel:ch with
          | () ->
            if not (Hashtbl.mem primaries ch) then ok := false
            else Hashtbl.remove primaries ch
          | exception Not_found -> if Hashtbl.mem primaries ch then ok := false)
        | 2 -> (
          (* set reservation *)
          let bw = 100 * (1 + Prng.int rng 8) in
          match Hashtbl.find_opt primaries ch with
          | None -> (
            match Link_state.set_primary l ~channel:ch bw with
            | () -> ok := false
            | exception Invalid_argument _ -> ())
          | Some (r, f) -> (
            let fits = bw >= f && ref_total () - r + bw <= capacity in
            match Link_state.set_primary l ~channel:ch bw with
            | () -> if fits then Hashtbl.replace primaries ch (bw, f) else ok := false
            | exception Invalid_argument _ -> if fits then ok := false))
        | 3 ->
          (* register backup *)
          let b_min = 100 * (1 + Prng.int rng 2) in
          let edges = List.init (1 + Prng.int rng 3) (fun _ -> Prng.int rng 5) in
          let edges = List.sort_uniq compare edges in
          let would =
            let by_edge = Hashtbl.create 8 in
            Hashtbl.iter
              (fun _ (b, es) ->
                List.iter
                  (fun e ->
                    Hashtbl.replace by_edge e
                      (b + Option.value ~default:0 (Hashtbl.find_opt by_edge e)))
                  es)
              backups;
            List.iter
              (fun e ->
                Hashtbl.replace by_edge e
                  (b_min + Option.value ~default:0 (Hashtbl.find_opt by_edge e)))
              edges;
            Hashtbl.fold (fun _ v acc -> max v acc) by_edge 0
          in
          let fits =
            (not (Hashtbl.mem backups ch)) && ref_min_total () + would <= capacity
          in
          (match Link_state.register_backup l ~channel:ch ~b_min ~primary_edges:edges with
          | () ->
            if not fits then ok := false else Hashtbl.replace backups ch (b_min, edges)
          | exception Invalid_argument _ -> if fits then ok := false)
        | _ -> (
          (* unregister backup *)
          match Link_state.unregister_backup l ~channel:ch with
          | () ->
            if not (Hashtbl.mem backups ch) then ok := false
            else Hashtbl.remove backups ch
          | exception Not_found -> if Hashtbl.mem backups ch then ok := false));
        (* Observables must agree after every step. *)
        if
          Link_state.primary_total l <> ref_total ()
          || Link_state.primary_min_total l <> ref_min_total ()
          || Link_state.backup_pool l <> ref_pool ()
        then ok := false;
        (match Link_state.check_invariant l with
        | () -> ()
        | exception Failure _ -> ok := false);
        ignore step
      done;
      !ok)

(* --- Net_state --- *)

let test_net_state_basics () =
  let g, _, _, _ = line_graph () in
  let net = Net_state.create ~capacity:500 g in
  Alcotest.(check int) "links" 6 (Net_state.link_count net);
  Alcotest.(check int) "capacity" 500 (Link_state.capacity (Net_state.link net 0));
  Alcotest.(check bool) "multiplexing default" true (Net_state.multiplexing net)

let test_net_state_failures () =
  let g, e0, _, _ = line_graph () in
  let net = Net_state.create g in
  Alcotest.(check bool) "usable" true (Net_state.usable_edge net e0);
  Net_state.fail_edge net e0;
  Alcotest.(check bool) "failed" true (Net_state.edge_failed net e0);
  Alcotest.(check (list int)) "failed list" [ e0 ] (Net_state.failed_edges net);
  Net_state.fail_edge net e0;
  Alcotest.(check (list int)) "idempotent" [ e0 ] (Net_state.failed_edges net);
  Net_state.repair_edge net e0;
  Alcotest.(check bool) "repaired" true (Net_state.usable_edge net e0)

let test_net_state_totals () =
  let g, _, _, _ = line_graph () in
  let net = Net_state.create ~capacity:1000 g in
  Link_state.reserve_primary (Net_state.link net 0) ~channel:1 ~b_min:100;
  Link_state.reserve_primary (Net_state.link net 2) ~channel:1 ~b_min:100;
  Alcotest.(check int) "total primary" 200 (Net_state.total_primary_reserved net);
  Alcotest.check approx "utilisation" (200. /. 6000.) (Net_state.utilisation net);
  Net_state.check_invariants net

let test_multiplexing_gain () =
  let g, e0, _, _ = line_graph () in
  ignore e0;
  let net = Net_state.create ~capacity:1000 g in
  Alcotest.check approx "no backups" 1. (Net_state.multiplexing_gain net);
  (* Two disjoint-primary backups on link 0: dedicated 200, pooled 100. *)
  let l = Net_state.link net 0 in
  Link_state.register_backup l ~channel:1 ~b_min:100 ~primary_edges:[ 50 ];
  Link_state.register_backup l ~channel:2 ~b_min:100 ~primary_edges:[ 51 ];
  Alcotest.check approx "gain 2" 2. (Net_state.multiplexing_gain net);
  Alcotest.(check int) "dedicated demand" 200 (Link_state.backup_dedicated_demand l);
  Alcotest.(check int) "pool" 100 (Link_state.backup_pool l)

let test_net_state_heterogeneous () =
  let g, _, _, _ = line_graph () in
  let net = Net_state.create_heterogeneous ~capacity_of:(fun dl -> 100 * (dl + 1)) g in
  Alcotest.(check int) "link 0" 100 (Link_state.capacity (Net_state.link net 0));
  Alcotest.(check int) "link 5" 600 (Link_state.capacity (Net_state.link net 5))

(* --- Policy --- *)

let claim u e = { Policy.utility = u; extras_granted = e }

let test_policy_equal_share () =
  let c = Policy.compare_claims Policy.equal_share in
  Alcotest.(check bool) "fewer extras first" true (c (claim 1. 0) (claim 1. 3) < 0);
  Alcotest.(check int) "tie" 0 (c (claim 1. 2) (claim 5. 2))

let test_policy_proportional () =
  let c = Policy.compare_claims Policy.proportional in
  (* 2 extras at utility 4 = 0.5 per utility beats 1 extra at utility 1. *)
  Alcotest.(check bool) "utility-weighted" true (c (claim 4. 2) (claim 1. 1) < 0)

let test_policy_max_utility () =
  let c = Policy.compare_claims Policy.max_utility in
  Alcotest.(check bool) "higher utility first" true (c (claim 5. 9) (claim 1. 0) < 0)

let test_policy_strings () =
  List.iter
    (fun p ->
      let s = Format.asprintf "%a" Policy.pp p in
      Alcotest.(check (option bool)) ("roundtrip " ^ s) (Some true)
        (Option.map (fun p' -> Policy.equal p' p) (Policy.of_string s)))
    Policy.all;
  Alcotest.(check bool) "unknown" true (Policy.of_string "bogus" = None);
  (* Historical aliases still resolve. *)
  List.iter
    (fun (alias, p) ->
      Alcotest.(check (option bool)) ("alias " ^ alias) (Some true)
        (Option.map (Policy.equal p) (Policy.of_string alias)))
    [
      ("equal", Policy.equal_share);
      ("coefficient", Policy.proportional);
      ("max", Policy.max_utility);
    ]

(* Policies are first-class values: a custom one plugs in through
   {!Policy.make} and drives the same water-filling core. *)
let test_policy_first_class () =
  (* Reverse priority: most extras granted first (a deliberately unfair
     discipline) — still terminates and still reaches a fixed point. *)
  let greedy =
    Policy.make ~name:"greedy-rich"
      ~order:(fun a b ->
        compare b.Policy.extras_granted a.Policy.extras_granted)
      ~style:`Rounds
  in
  Alcotest.(check string) "name" "greedy-rich" (Policy.name greedy);
  Alcotest.(check bool) "distinct from builtins" true
    (not (List.exists (Policy.equal greedy) Policy.all));
  let g = Graph.create 2 in
  ignore (Graph.add_edge g 0 1);
  let cfg =
    Drcomm.Config.make ~policy:greedy ~with_backups:false ~require_backup:false
      ()
  in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:600 g) in
  let qos = Qos.make ~b_min:100 ~b_max:500 ~increment:100 () in
  let admit () =
    match Drcomm.admit t ~src:0 ~dst:1 ~qos with
    | Drcomm.Admitted (id, _) -> id
    | Drcomm.Rejected _ -> Alcotest.fail "expected admission"
  in
  let a = admit () in
  let b = admit () in
  (* Fixed point: all 600 granted, floors respected. *)
  Alcotest.(check int) "all capacity granted" 600
    (Drcomm.reserved_bandwidth t a + Drcomm.reserved_bandwidth t b);
  Alcotest.(check bool) "floors respected" true
    (Drcomm.reserved_bandwidth t a >= 100 && Drcomm.reserved_bandwidth t b >= 100);
  Drcomm.check_invariants t

(* --- Interval QoS --- *)

let test_interval_spec_validation () =
  Alcotest.check_raises "k > m" (Invalid_argument "Interval_qos.spec: need 1 <= k <= m")
    (fun () -> ignore (Interval_qos.spec ~k:5 ~m:3))

let test_interval_fresh_window () =
  let mon = Interval_qos.create (Interval_qos.spec ~k:3 ~m:5) in
  Alcotest.(check bool) "clean start" true (Interval_qos.satisfied mon);
  Alcotest.(check int) "all delivered" 5 (Interval_qos.delivered_in_window mon);
  Alcotest.(check int) "can lose m - k" 2 (Interval_qos.distance_to_failure mon)

let test_interval_sliding () =
  let mon = Interval_qos.create (Interval_qos.spec ~k:2 ~m:3) in
  Interval_qos.record mon ~delivered:false;
  Alcotest.(check bool) "2/3 ok" true (Interval_qos.satisfied mon);
  Alcotest.(check int) "critical" 0 (Interval_qos.distance_to_failure mon);
  Alcotest.(check bool) "cannot skip" false (Interval_qos.can_skip mon);
  Interval_qos.record mon ~delivered:true;
  Interval_qos.record mon ~delivered:true;
  (* Window now T T with one stale loss about to slide out. *)
  Interval_qos.record mon ~delivered:true;
  Alcotest.(check int) "recovered" 1 (Interval_qos.distance_to_failure mon);
  Alcotest.(check bool) "may skip again" true (Interval_qos.can_skip mon)

let test_interval_violation_count () =
  let mon = Interval_qos.create (Interval_qos.spec ~k:2 ~m:2) in
  Interval_qos.record mon ~delivered:false;
  Alcotest.(check bool) "violated" false (Interval_qos.satisfied mon);
  Alcotest.(check int) "counted" 1 (Interval_qos.violations mon);
  Alcotest.(check int) "distance 0 when violated" 0 (Interval_qos.distance_to_failure mon)

let test_interval_skip_guided_stream () =
  (* Skipping exactly when allowed must never violate the contract. *)
  let mon = Interval_qos.create (Interval_qos.spec ~k:3 ~m:5) in
  for _ = 1 to 200 do
    let skip = Interval_qos.can_skip mon in
    Interval_qos.record mon ~delivered:(not skip);
    Alcotest.(check bool) "never violated" true (Interval_qos.satisfied mon)
  done;
  Alcotest.(check int) "zero violations" 0 (Interval_qos.violations mon)

(* --- EDF --- *)

let test_edf_orders_by_deadline () =
  let link = Edf.create ~rate:1000 in
  (* 1000 Kbps: 1000 bits = 1 ms. *)
  Edf.submit link { Edf.channel = 1; release = 0.; deadline = 0.010; size_bits = 1000 };
  Edf.submit link { Edf.channel = 2; release = 0.; deadline = 0.002; size_bits = 1000 };
  let done_ = Edf.drain link in
  Alcotest.(check (list int)) "deadline order" [ 2; 1 ]
    (List.map (fun c -> c.Edf.packet.Edf.channel) done_);
  List.iter (fun c -> Alcotest.(check bool) "met" false c.Edf.missed) done_

let test_edf_detects_miss () =
  let link = Edf.create ~rate:1000 in
  Edf.submit link { Edf.channel = 1; release = 0.; deadline = 0.0005; size_bits = 1000 };
  match Edf.drain link with
  | [ c ] -> Alcotest.(check bool) "missed" true c.Edf.missed
  | _ -> Alcotest.fail "expected one completion"

let test_edf_respects_release () =
  let link = Edf.create ~rate:1000 in
  Edf.submit link { Edf.channel = 1; release = 0.005; deadline = 0.02; size_bits = 1000 };
  match Edf.drain link with
  | [ c ] ->
    Alcotest.check approx "starts at release" 0.005 c.Edf.start;
    Alcotest.check approx "finishes after tx" 0.006 c.Edf.finish
  | _ -> Alcotest.fail "expected one completion"

let test_edf_run_until () =
  let link = Edf.create ~rate:1000 in
  for i = 0 to 4 do
    Edf.submit link
      { Edf.channel = i; release = 0.; deadline = 1.; size_bits = 1000 }
  done;
  let first = Edf.run link ~until:0.0035 in
  Alcotest.(check int) "three fit" 3 (List.length first);
  Alcotest.(check int) "two pending" 2 (Edf.pending link);
  let rest = Edf.drain link in
  Alcotest.(check int) "drained" 2 (List.length rest)

let test_edf_utilisation () =
  let flows =
    [
      { Edf.period = 0.01; packet_bits = 1000; relative_deadline = 0.01 };
      { Edf.period = 0.02; packet_bits = 4000; relative_deadline = 0.02 };
    ]
  in
  (* 1000 Kbps -> tx times 1ms and 4ms; U = 0.1 + 0.2. *)
  Alcotest.check approx "utilisation" 0.3 (Edf.utilisation ~rate:1000 flows);
  Alcotest.(check bool) "schedulable" true (Edf.schedulable ~rate:1000 flows)

let test_edf_overload_not_schedulable () =
  let flows =
    [
      { Edf.period = 0.001; packet_bits = 1000; relative_deadline = 0.001 };
      { Edf.period = 0.001; packet_bits = 1000; relative_deadline = 0.001 };
    ]
  in
  Alcotest.(check bool) "overloaded" false (Edf.schedulable ~rate:1000 flows)

let test_edf_blocking_check () =
  (* Utilisation is tiny but a huge foreign packet can block a tight
     deadline: the non-preemptive test must reject. *)
  let flows =
    [
      { Edf.period = 1.; packet_bits = 100_000; relative_deadline = 1. };
      { Edf.period = 1.; packet_bits = 100; relative_deadline = 0.001 };
    ]
  in
  Alcotest.(check bool) "blocked" false (Edf.schedulable ~rate:1000 flows)

(* Property: an EDF-feasible released workload (utilisation < 1, generous
   deadlines) never misses. *)
let qcheck_edf_no_miss_when_feasible =
  QCheck.Test.make ~name:"EDF meets generous deadlines" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_range 1 50))
    (fun sizes ->
      let link = Edf.create ~rate:1000 in
      let total = List.fold_left ( + ) 0 sizes in
      (* All released at 0; give every packet the full busy period. *)
      List.iteri
        (fun i s ->
          Edf.submit link
            {
              Edf.channel = i;
              release = 0.;
              deadline = float_of_int (total * 1000) /. 1e6 +. 0.001;
              size_bits = s * 1000;
            })
        sizes;
      List.for_all (fun c -> not c.Edf.missed) (Edf.drain link))

let qcheck_interval_dbp_consistent =
  QCheck.Test.make ~name:"DBP skips never violate the window" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 0 5))
    (fun (k, extra) ->
      let m = k + extra in
      let mon = Interval_qos.create (Interval_qos.spec ~k ~m) in
      let ok = ref true in
      for _ = 1 to 100 do
        let skip = Interval_qos.can_skip mon in
        Interval_qos.record mon ~delivered:(not skip);
        if not (Interval_qos.satisfied mon) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "net"
    [
      ( "bandwidth",
        [
          Alcotest.test_case "units" `Quick test_bandwidth_units;
          Alcotest.test_case "negative" `Quick test_bandwidth_negative;
          Alcotest.test_case "printing" `Quick test_bandwidth_pp;
        ] );
      ( "qos",
        [
          Alcotest.test_case "levels" `Quick test_qos_levels;
          Alcotest.test_case "level/bandwidth roundtrip" `Quick
            test_qos_level_bandwidth_roundtrip;
          Alcotest.test_case "off grid" `Quick test_qos_off_grid;
          Alcotest.test_case "validation" `Quick test_qos_validation;
          Alcotest.test_case "single value" `Quick test_qos_single_value;
        ] );
      ( "dirlink",
        [
          Alcotest.test_case "ids" `Quick test_dirlink_ids;
          Alcotest.test_case "of_path" `Quick test_dirlink_of_path;
          Alcotest.test_case "shares_edge" `Quick test_dirlink_shares_edge;
        ] );
      ( "link-state",
        [
          Alcotest.test_case "reserve/release" `Quick test_link_reserve_release;
          Alcotest.test_case "double reserve" `Quick test_link_double_reserve_rejected;
          Alcotest.test_case "admission uses floors" `Quick test_link_admission_uses_floors;
          Alcotest.test_case "set_primary constraints" `Quick
            test_link_set_primary_constraints;
          Alcotest.test_case "release unknown" `Quick test_link_release_unknown;
          Alcotest.test_case "backup multiplexing" `Quick test_backup_multiplexing;
          Alcotest.test_case "pool prediction pure" `Quick test_backup_pool_with_is_pure;
          Alcotest.test_case "no-multiplexing mode" `Quick test_backup_no_multiplexing_mode;
          Alcotest.test_case "backup blocks admission" `Quick test_backup_blocks_admission;
          Alcotest.test_case "pool overflow rejected" `Quick
            test_backup_pool_overflow_rejected;
          Alcotest.test_case "extras borrow pool" `Quick test_extras_borrow_backup_pool;
          Alcotest.test_case "forced activation reserve" `Quick
            test_force_reserve_for_activation;
          Alcotest.test_case "iteration & counts" `Quick test_iter_and_counts;
        ] );
      ( "net-state",
        [
          Alcotest.test_case "basics" `Quick test_net_state_basics;
          Alcotest.test_case "failures" `Quick test_net_state_failures;
          Alcotest.test_case "totals" `Quick test_net_state_totals;
          Alcotest.test_case "heterogeneous" `Quick test_net_state_heterogeneous;
          Alcotest.test_case "multiplexing gain" `Quick test_multiplexing_gain;
        ] );
      ( "policy",
        [
          Alcotest.test_case "equal share" `Quick test_policy_equal_share;
          Alcotest.test_case "proportional" `Quick test_policy_proportional;
          Alcotest.test_case "max utility" `Quick test_policy_max_utility;
          Alcotest.test_case "string roundtrip" `Quick test_policy_strings;
          Alcotest.test_case "first-class policy" `Quick test_policy_first_class;
        ] );
      ( "interval-qos",
        [
          Alcotest.test_case "spec validation" `Quick test_interval_spec_validation;
          Alcotest.test_case "fresh window" `Quick test_interval_fresh_window;
          Alcotest.test_case "sliding" `Quick test_interval_sliding;
          Alcotest.test_case "violations" `Quick test_interval_violation_count;
          Alcotest.test_case "skip-guided stream" `Quick test_interval_skip_guided_stream;
        ] );
      ( "edf",
        [
          Alcotest.test_case "deadline order" `Quick test_edf_orders_by_deadline;
          Alcotest.test_case "miss detection" `Quick test_edf_detects_miss;
          Alcotest.test_case "release respected" `Quick test_edf_respects_release;
          Alcotest.test_case "run until" `Quick test_edf_run_until;
          Alcotest.test_case "utilisation" `Quick test_edf_utilisation;
          Alcotest.test_case "overload" `Quick test_edf_overload_not_schedulable;
          Alcotest.test_case "blocking" `Quick test_edf_blocking_check;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_edf_no_miss_when_feasible;
            qcheck_interval_dbp_consistent;
            qcheck_link_state_model;
          ] );
    ]
