(* Tests for the shared spec-based option parser (lib/cliopt), the one
   flag table behind Exp.parse_args, the bench sub-command dispatch, and
   the fuzz reproducer headers. *)

let parse ~specs args = Cliopt.parse ~specs args

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_unit_and_value_flags () =
  let quick = ref false and out = ref "" in
  let specs =
    [
      ("--quick", Cliopt.Unit (fun () -> quick := true));
      ( "--out",
        Cliopt.Value
          (fun v ->
            out := v;
            Ok ()) );
    ]
  in
  (match parse ~specs [ "--quick"; "--out"; "dir"; "rest" ] with
  | Ok rest -> Alcotest.(check (list string)) "passthrough" [ "rest" ] rest
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unit applied" true !quick;
  Alcotest.(check string) "value applied" "dir" !out

let test_unknowns_pass_through_in_order () =
  let specs = [ ("--quick", Cliopt.Unit ignore) ] in
  match parse ~specs [ "a"; "--quick"; "b"; "c" ] with
  | Ok rest -> Alcotest.(check (list string)) "order kept" [ "a"; "b"; "c" ] rest
  | Error e -> Alcotest.fail e

let test_value_flag_missing_argument () =
  let specs = [ ("--out", Cliopt.Value (fun _ -> Ok ())) ] in
  match parse ~specs [ "--out" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    Alcotest.(check bool) ("mentions the flag: " ^ e) true
      (contains ~sub:"--out" e)

let test_value_callback_rejection_propagates () =
  let specs = [ ("--jobs", Cliopt.Value (fun _ -> Error "bad jobs")) ] in
  match parse ~specs [ "--jobs"; "zero" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> Alcotest.(check string) "verbatim" "bad jobs" e

let test_flags_before_error_stay_applied () =
  let quick = ref false in
  let specs =
    [
      ("--quick", Cliopt.Unit (fun () -> quick := true));
      ("--bad", Cliopt.Value (fun _ -> Error "no"));
    ]
  in
  (match parse ~specs [ "--quick"; "--bad"; "x" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ());
  Alcotest.(check bool) "prior flag applied" true !quick

let test_kv_applies_in_order () =
  let seen = ref [] in
  let spec k = (k, fun v -> Ok (seen := (k, v) :: !seen)) in
  (match
     Cliopt.parse_kv
       ~specs:[ spec "seed"; spec "nodes" ]
       [ ("seed", "7"); ("nodes", "30") ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair string string)))
    "all applied, in order"
    [ ("seed", "7"); ("nodes", "30") ]
    (List.rev !seen)

let test_kv_unknown_key_is_an_error () =
  match Cliopt.parse_kv ~specs:[ ("seed", fun _ -> Ok ()) ] [ ("sedd", "7") ] with
  | Ok () -> Alcotest.fail "unknown key must not be dropped"
  | Error e ->
    Alcotest.(check bool) ("names the key: " ^ e) true
      (contains ~sub:"sedd" e)

let test_kv_value_rejection_propagates () =
  match
    Cliopt.parse_kv
      ~specs:[ ("seed", fun v -> Error ("bad seed " ^ v)) ]
      [ ("seed", "x") ]
  with
  | Ok () -> Alcotest.fail "expected an error"
  | Error e -> Alcotest.(check string) "verbatim" "bad seed x" e

let () =
  Alcotest.run "cliopt"
    [
      ( "parse",
        [
          Alcotest.test_case "unit and value flags" `Quick test_unit_and_value_flags;
          Alcotest.test_case "unknowns pass through" `Quick
            test_unknowns_pass_through_in_order;
          Alcotest.test_case "value without argument" `Quick
            test_value_flag_missing_argument;
          Alcotest.test_case "callback rejection" `Quick
            test_value_callback_rejection_propagates;
          Alcotest.test_case "prior flags stay applied" `Quick
            test_flags_before_error_stay_applied;
        ] );
      ( "parse_kv",
        [
          Alcotest.test_case "applies in order" `Quick test_kv_applies_in_order;
          Alcotest.test_case "unknown key errors" `Quick
            test_kv_unknown_key_is_an_error;
          Alcotest.test_case "rejection propagates" `Quick
            test_kv_value_rejection_propagates;
        ] );
    ]
