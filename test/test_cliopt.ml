(* Tests for the shared spec-based option parser (lib/cliopt), the one
   flag table behind Exp.parse_args, the bench sub-command dispatch, and
   the fuzz reproducer headers. *)

let parse ~specs args = Cliopt.parse ~specs args

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_unit_and_value_flags () =
  let quick = ref false and out = ref "" in
  let specs =
    [
      ("--quick", Cliopt.Unit (fun () -> quick := true));
      ( "--out",
        Cliopt.Value
          (fun v ->
            out := v;
            Ok ()) );
    ]
  in
  (match parse ~specs [ "--quick"; "--out"; "dir"; "rest" ] with
  | Ok rest -> Alcotest.(check (list string)) "passthrough" [ "rest" ] rest
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unit applied" true !quick;
  Alcotest.(check string) "value applied" "dir" !out

let test_unknowns_pass_through_in_order () =
  let specs = [ ("--quick", Cliopt.Unit ignore) ] in
  match parse ~specs [ "a"; "--quick"; "b"; "c" ] with
  | Ok rest -> Alcotest.(check (list string)) "order kept" [ "a"; "b"; "c" ] rest
  | Error e -> Alcotest.fail e

let test_value_flag_missing_argument () =
  let specs = [ ("--out", Cliopt.Value (fun _ -> Ok ())) ] in
  match parse ~specs [ "--out" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    Alcotest.(check bool) ("mentions the flag: " ^ e) true
      (contains ~sub:"--out" e)

let test_value_callback_rejection_propagates () =
  let specs = [ ("--jobs", Cliopt.Value (fun _ -> Error "bad jobs")) ] in
  match parse ~specs [ "--jobs"; "zero" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> Alcotest.(check string) "verbatim" "bad jobs" e

let test_flags_before_error_stay_applied () =
  let quick = ref false in
  let specs =
    [
      ("--quick", Cliopt.Unit (fun () -> quick := true));
      ("--bad", Cliopt.Value (fun _ -> Error "no"));
    ]
  in
  (match parse ~specs [ "--quick"; "--bad"; "x" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ());
  Alcotest.(check bool) "prior flag applied" true !quick

let test_eq_spelling () =
  let out = ref "" and jobs = ref "" in
  let set r v =
    r := v;
    Ok ()
  in
  let specs =
    [ ("--out", Cliopt.Value (set out)); ("--jobs", Cliopt.Value (set jobs)) ]
  in
  match parse ~specs [ "--out=dir"; "--jobs"; "4"; "rest" ] with
  | Ok rest ->
    Alcotest.(check (list string)) "passthrough" [ "rest" ] rest;
    Alcotest.(check string) "= spelling applied" "dir" !out;
    Alcotest.(check string) "two-word spelling still works" "4" !jobs
  | Error e -> Alcotest.fail e

let test_eq_spelling_empty_and_extra_eq () =
  let got = ref "unset" in
  let specs =
    [
      ( "--out",
        Cliopt.Value
          (fun v ->
            got := v;
            Ok ()) );
    ]
  in
  (* Everything after the first '=' is the value, '=' signs included. *)
  (match parse ~specs [ "--out=a=b" ] with
  | Ok _ -> Alcotest.(check string) "value keeps later '='" "a=b" !got
  | Error e -> Alcotest.fail e);
  match parse ~specs:[ ("--tag", Cliopt.Value (fun v -> Ok (got := v))) ]
          [ "--tag=" ]
  with
  | Ok _ -> Alcotest.(check string) "empty value allowed" "" !got
  | Error e -> Alcotest.fail e

let test_eq_on_unit_flag_rejected () =
  let specs = [ ("--quick", Cliopt.Unit ignore) ] in
  match parse ~specs [ "--quick=yes" ] with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    Alcotest.(check bool) ("mentions the flag: " ^ e) true
      (contains ~sub:"--quick" e)

let test_unknown_eq_argument_passes_through () =
  let specs = [ ("--out", Cliopt.Value (fun _ -> Ok ())) ] in
  match parse ~specs [ "seed=7"; "--out"; "d"; "--other=x" ] with
  | Ok rest ->
    Alcotest.(check (list string))
      "unknown k=v words survive verbatim"
      [ "seed=7"; "--other=x" ]
      rest
  | Error e -> Alcotest.fail e

let test_duplicate_value_flag_rejected () =
  let out = ref "" in
  let specs =
    [
      ( "--out",
        Cliopt.Value
          (fun v ->
            out := v;
            Ok ()) );
    ]
  in
  (match parse ~specs [ "--out"; "a"; "--out"; "b" ] with
  | Ok _ -> Alcotest.fail "duplicate --out must not silently win"
  | Error e ->
    Alcotest.(check bool) ("names the flag: " ^ e) true
      (contains ~sub:"--out" e));
  (* Mixed spellings are still the same flag. *)
  match parse ~specs [ "--out=a"; "--out"; "b" ] with
  | Ok _ -> Alcotest.fail "duplicate across spellings must error"
  | Error e ->
    Alcotest.(check bool) ("names the flag: " ^ e) true
      (contains ~sub:"--out" e)

let test_duplicate_unit_flag_allowed () =
  let n = ref 0 in
  let specs = [ ("--quick", Cliopt.Unit (fun () -> incr n)) ] in
  match parse ~specs [ "--quick"; "--quick" ] with
  | Ok rest ->
    Alcotest.(check (list string)) "nothing passed through" [] rest;
    Alcotest.(check int) "both applications ran" 2 !n
  | Error e -> Alcotest.fail e

let test_kv_applies_in_order () =
  let seen = ref [] in
  let spec k = (k, fun v -> Ok (seen := (k, v) :: !seen)) in
  (match
     Cliopt.parse_kv
       ~specs:[ spec "seed"; spec "nodes" ]
       [ ("seed", "7"); ("nodes", "30") ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair string string)))
    "all applied, in order"
    [ ("seed", "7"); ("nodes", "30") ]
    (List.rev !seen)

let test_kv_unknown_key_is_an_error () =
  match Cliopt.parse_kv ~specs:[ ("seed", fun _ -> Ok ()) ] [ ("sedd", "7") ] with
  | Ok () -> Alcotest.fail "unknown key must not be dropped"
  | Error e ->
    Alcotest.(check bool) ("names the key: " ^ e) true
      (contains ~sub:"sedd" e)

let test_kv_value_rejection_propagates () =
  match
    Cliopt.parse_kv
      ~specs:[ ("seed", fun v -> Error ("bad seed " ^ v)) ]
      [ ("seed", "x") ]
  with
  | Ok () -> Alcotest.fail "expected an error"
  | Error e -> Alcotest.(check string) "verbatim" "bad seed x" e

let test_kv_duplicate_key_is_an_error () =
  let last = ref "" in
  match
    Cliopt.parse_kv
      ~specs:[ ("seed", fun v -> Ok (last := v)) ]
      [ ("seed", "7"); ("seed", "8") ]
  with
  | Ok () -> Alcotest.fail "duplicate key must not silently win"
  | Error e ->
    Alcotest.(check bool) ("names the key: " ^ e) true (contains ~sub:"seed" e);
    Alcotest.(check string) "first application already ran" "7" !last

let () =
  Alcotest.run "cliopt"
    [
      ( "parse",
        [
          Alcotest.test_case "unit and value flags" `Quick test_unit_and_value_flags;
          Alcotest.test_case "unknowns pass through" `Quick
            test_unknowns_pass_through_in_order;
          Alcotest.test_case "value without argument" `Quick
            test_value_flag_missing_argument;
          Alcotest.test_case "callback rejection" `Quick
            test_value_callback_rejection_propagates;
          Alcotest.test_case "prior flags stay applied" `Quick
            test_flags_before_error_stay_applied;
          Alcotest.test_case "--flag=value spelling" `Quick test_eq_spelling;
          Alcotest.test_case "= spelling edge cases" `Quick
            test_eq_spelling_empty_and_extra_eq;
          Alcotest.test_case "= on unit flag rejected" `Quick
            test_eq_on_unit_flag_rejected;
          Alcotest.test_case "unknown k=v passes through" `Quick
            test_unknown_eq_argument_passes_through;
          Alcotest.test_case "duplicate value flag rejected" `Quick
            test_duplicate_value_flag_rejected;
          Alcotest.test_case "duplicate unit flag allowed" `Quick
            test_duplicate_unit_flag_allowed;
        ] );
      ( "parse_kv",
        [
          Alcotest.test_case "applies in order" `Quick test_kv_applies_in_order;
          Alcotest.test_case "unknown key errors" `Quick
            test_kv_unknown_key_is_an_error;
          Alcotest.test_case "rejection propagates" `Quick
            test_kv_value_rejection_propagates;
          Alcotest.test_case "duplicate key errors" `Quick
            test_kv_duplicate_key_is_an_error;
        ] );
    ]
