(* Tests for the paper's Markov model, the parameter estimator and the
   ideal-bandwidth formula. *)

let approx = Alcotest.float 1e-9
let loose = Alcotest.float 1e-6

let qos3 = Qos.make ~b_min:100 ~b_max:300 ~increment:100 () (* 3 levels *)

(* A hand-built 3-level parameter set:
   - arrivals knock every upper level straight to 0 (A row i: -> 0),
   - indirect arrivals lift 0 -> 1 (B),
   - terminations lift i -> i+1 (T). *)
let params ?(lambda = 1.) ?(mu = 1.) ?(gamma = 0.) ?(p_f = 0.5) ?(p_s = 0.25) () =
  {
    Model.lambda;
    mu;
    gamma;
    p_f;
    p_s;
    a = Matrix.of_arrays [| [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |];
    b = Matrix.of_arrays [| [| 0.; 1.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |];
    t_mat = Matrix.of_arrays [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 0.; 0.; 1. |] |];
  }

let test_build_rates_match_figure1 () =
  let p = params () in
  let c = Model.build p in
  (* Downward 1 -> 0: P_f * A_10 * (lambda + gamma) = 0.5 * 1 * 1. *)
  Alcotest.check approx "down 1->0" 0.5 (Ctmc.rate c ~src:1 ~dst:0);
  Alcotest.check approx "down 2->0" 0.5 (Ctmc.rate c ~src:2 ~dst:0);
  (* Upward 0 -> 1: P_s * B_01 * lambda + P_f * T_01 * mu
     = 0.25 + 0.5 = 0.75. *)
  Alcotest.check approx "up 0->1" 0.75 (Ctmc.rate c ~src:0 ~dst:1);
  (* Upward 1 -> 2 comes only from T (B_12 = 0 in row 1): 0.5. *)
  Alcotest.check approx "up 1->2" 0.5 (Ctmc.rate c ~src:1 ~dst:2);
  Alcotest.check approx "no 2->1" 0. (Ctmc.rate c ~src:2 ~dst:1)

let test_gamma_adds_downward_pressure () =
  let without = Model.average_bandwidth (params ()) ~qos:qos3 in
  let with_failures = Model.average_bandwidth (params ~gamma:2. ()) ~qos:qos3 in
  Alcotest.(check bool)
    (Printf.sprintf "failures reduce average (%.1f -> %.1f)" without with_failures)
    true
    (with_failures < without)

let test_upward_triangle_of_a_ignored () =
  (* Planting an upward entry in A must not create an upward rate. *)
  let p = params () in
  let a = Matrix.of_arrays [| [| 0.5; 0.5; 0. |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |] in
  let c = Model.build { p with Model.a } in
  Alcotest.check approx "A upward ignored" 0.75 (Ctmc.rate c ~src:0 ~dst:1)

let test_average_bandwidth_in_range () =
  let avg = Model.average_bandwidth (params ()) ~qos:qos3 in
  Alcotest.(check bool) "within [100, 300]" true (avg >= 100. && avg <= 300.)

let test_more_contention_lower_average () =
  let light = Model.average_bandwidth (params ~p_f:0.05 ~p_s:0.05 ()) ~qos:qos3 in
  let heavy = Model.average_bandwidth (params ~p_f:0.9 ~p_s:0.05 ()) ~qos:qos3 in
  Alcotest.(check bool)
    (Printf.sprintf "p_f up, average down (%.1f vs %.1f)" light heavy)
    true (heavy < light)

let test_validate_rejects () =
  let p = params () in
  Alcotest.check_raises "bad p_f"
    (Invalid_argument "Model.validate: p_f = 1.5 outside [0, 1]") (fun () ->
      Model.validate { p with Model.p_f = 1.5 });
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Model.validate: bad lambda rate -1") (fun () ->
      Model.validate { p with Model.lambda = -1. });
  (* A defines the chain's dimension, so plant the mismatch in B. *)
  let bad_matrix = Matrix.of_arrays [| [| 1. |] |] in
  Alcotest.check_raises "wrong dims"
    (Invalid_argument "Model.validate: B has wrong dimensions") (fun () ->
      Model.validate { p with Model.b = bad_matrix })

let test_average_bandwidth_levels_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Model.average_bandwidth: QoS levels do not match the chain")
    (fun () ->
      ignore
        (Model.average_bandwidth (params ()) ~qos:(Qos.paper_spec ~increment:50)))

let test_degenerate_chain_regularised_to_ceiling () =
  (* All-identity matrices: no transitions observed (uncontended network).
     The plain chain is singular; the regularised one concentrates at the
     top level. *)
  let p =
    {
      Model.lambda = 1.;
      mu = 1.;
      gamma = 0.;
      p_f = 0.;
      p_s = 0.;
      a = Matrix.identity 3;
      b = Matrix.identity 3;
      t_mat = Matrix.identity 3;
    }
  in
  Alcotest.check_raises "singular" Linsolve.Singular (fun () ->
      ignore (Model.stationary p));
  let avg = Model.average_bandwidth_regularized p ~qos:qos3 in
  Alcotest.check (Alcotest.float 0.5) "ceiling" 300. avg

let test_regularisation_negligible_when_rates_exist () =
  let p = params () in
  let plain = Model.average_bandwidth p ~qos:qos3 in
  let reg = Model.average_bandwidth_regularized p ~qos:qos3 in
  Alcotest.check loose "negligible perturbation" plain reg

let test_sensitivity_signs () =
  let p = params () in
  (* More failures or more contention cost bandwidth; more terminations
     (upward pressure) gain it. *)
  Alcotest.(check bool) "gamma hurts" true (Model.sensitivity p ~qos:qos3 `Gamma < 0.);
  Alcotest.(check bool) "p_f hurts" true (Model.sensitivity p ~qos:qos3 `P_f < 0.);
  Alcotest.(check bool) "mu helps" true (Model.sensitivity p ~qos:qos3 `Mu > 0.);
  Alcotest.(check bool) "p_s helps" true (Model.sensitivity p ~qos:qos3 `P_s > 0.)

let test_sensitivity_matches_secant () =
  let p = params () in
  let d = Model.sensitivity p ~qos:qos3 `Gamma in
  let f g = Model.average_bandwidth_regularized { p with Model.gamma = g } ~qos:qos3 in
  let secant = (f 0.1 -. f 0.) /. 0.1 in
  (* The local derivative and a coarse secant agree in sign and rough
     magnitude on this smooth chain. *)
  Alcotest.(check bool)
    (Printf.sprintf "derivative %.2f vs secant %.2f" d secant)
    true
    (d < 0. && secant < 0. && Float.abs (d -. secant) < Float.abs d)

(* --- Estimator --- *)

let report ~existing ~direct ~indirect transitions =
  { Drcomm.existing; direct_count = direct; indirect_count = indirect; transitions }

(* The estimator never inspects channel identity — it only tallies level
   transitions — but the report type carries opaque handles, so mint a
   pool of real ones once and index into it. *)
let handles =
  let g = Graph.create 2 in
  ignore (Graph.add_edge g 0 1);
  let cfg = Drcomm.Config.make ~with_backups:false ~require_backup:false () in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:10_000 g) in
  Array.init 8 (fun _ ->
      match Drcomm.admit t ~src:0 ~dst:1 ~qos:(Qos.single_value 10) with
      | Drcomm.Admitted (id, _) -> id
      | Drcomm.Rejected _ -> assert false)

let tr channel before after chained =
  { Drcomm.channel = handles.(channel); before; after; chained }

let test_estimator_counts_and_probabilities () =
  let est = Estimator.create ~levels:3 in
  Estimator.observe_arrival est
    (report ~existing:10 ~direct:2 ~indirect:3
       [ tr 1 2 0 `Direct; tr 2 1 1 `Direct; tr 3 0 1 `Indirect ]);
  Estimator.observe_arrival est (report ~existing:10 ~direct:3 ~indirect:1 []);
  Alcotest.(check int) "arrivals" 2 (Estimator.arrivals est);
  Alcotest.check approx "p_f = 5/20" 0.25 (Estimator.p_f est);
  Alcotest.check approx "p_s = 4/20" 0.2 (Estimator.p_s est)

let test_estimator_matrices_row_stochastic () =
  let est = Estimator.create ~levels:3 in
  Estimator.observe_arrival est
    (report ~existing:5 ~direct:3 ~indirect:0
       [ tr 1 2 0 `Direct; tr 2 2 1 `Direct; tr 3 2 2 `Direct ]);
  let a = Estimator.a_matrix est in
  Dtmc.validate a;
  Alcotest.check approx "a[2][0]" (1. /. 3.) (Matrix.get a 2 0);
  Alcotest.check approx "a[2][1]" (1. /. 3.) (Matrix.get a 2 1);
  Alcotest.check approx "a[2][2]" (1. /. 3.) (Matrix.get a 2 2);
  (* Unobserved rows are identity. *)
  Alcotest.check approx "a[0][0]" 1. (Matrix.get a 0 0);
  Alcotest.(check int) "row count" 3 (Estimator.a_row_count est 2);
  Alcotest.(check int) "row 0 empty" 0 (Estimator.a_row_count est 0)

let test_estimator_separates_event_kinds () =
  let est = Estimator.create ~levels:2 in
  Estimator.observe_arrival est
    (report ~existing:2 ~direct:1 ~indirect:1 [ tr 1 1 0 `Direct; tr 2 0 1 `Indirect ]);
  Estimator.observe_termination est
    (report ~existing:2 ~direct:1 ~indirect:0 [ tr 1 0 1 `Direct ]);
  Estimator.observe_failure est
    (report ~existing:2 ~direct:1 ~indirect:0 [ tr 2 1 0 `Direct ]);
  (* A has the arrival direct transition only. *)
  Alcotest.check approx "A" 1. (Matrix.get (Estimator.a_matrix est) 1 0);
  Alcotest.check approx "B" 1. (Matrix.get (Estimator.b_matrix est) 0 1);
  Alcotest.check approx "T" 1. (Matrix.get (Estimator.t_matrix est) 0 1);
  Alcotest.check approx "F" 1. (Matrix.get (Estimator.f_matrix est) 1 0);
  (* And F did not leak into A: row 1 of A has only the observed 1->0. *)
  Alcotest.(check int) "one A obs in row 1" 1 (Estimator.a_row_count est 1);
  Alcotest.check approx "p_f termination side" 0.5 (Estimator.p_f_termination est)

let test_estimator_level_out_of_range () =
  let est = Estimator.create ~levels:2 in
  Alcotest.check_raises "range" (Invalid_argument "Estimator: level out of range")
    (fun () ->
      Estimator.observe_arrival est
        (report ~existing:1 ~direct:1 ~indirect:0 [ tr 1 5 0 `Direct ]))

let test_estimator_adaptation_counts () =
  let est = Estimator.create ~levels:3 in
  Estimator.observe_arrival est
    (report ~existing:3 ~direct:2 ~indirect:0
       [ tr 1 2 0 `Direct; tr 2 1 1 `Direct (* unchanged *) ]);
  Estimator.observe_termination est
    (report ~existing:3 ~direct:1 ~indirect:0 [ tr 1 0 2 `Direct ]);
  Alcotest.(check int) "two level changes" 2 (Estimator.adaptations est);
  Alcotest.check approx "per event" 1. (Estimator.adaptation_rate est)

let test_params_of_estimator_roundtrip () =
  let est = Estimator.create ~levels:2 in
  Estimator.observe_arrival est
    (report ~existing:4 ~direct:2 ~indirect:1 [ tr 1 1 0 `Direct; tr 2 0 1 `Indirect ]);
  Estimator.observe_termination est
    (report ~existing:4 ~direct:1 ~indirect:0 [ tr 1 0 1 `Direct ]);
  let p = Model.params_of_estimator ~lambda:0.7 ~mu:0.7 ~gamma:0.1 est in
  Model.validate p;
  Alcotest.check approx "p_f copied" 0.5 p.Model.p_f;
  Alcotest.check approx "lambda" 0.7 p.Model.lambda;
  let avg = Model.average_bandwidth_regularized p ~qos:(Qos.make ~b_min:100 ~b_max:200 ~increment:100 ()) in
  Alcotest.(check bool) "solvable" true (avg >= 100. && avg <= 200.)

(* --- Ideal --- *)

let test_ideal_formula () =
  (* 10 Mbps * 354 links / (1000 channels * 4 hops) = 885. *)
  Alcotest.check approx "raw" 885.
    (Ideal.bandwidth ~link_bandwidth:10_000 ~links:354 ~channels:1000 ~avg_hops:4.);
  let qos = Qos.paper_spec ~increment:50 in
  Alcotest.check approx "capped above" 500.
    (Ideal.bandwidth_capped ~qos ~link_bandwidth:10_000 ~links:354 ~channels:1000
       ~avg_hops:4.);
  Alcotest.check approx "capped below" 100.
    (Ideal.bandwidth_capped ~qos ~link_bandwidth:10_000 ~links:354 ~channels:100_000
       ~avg_hops:4.)

let test_ideal_monotone_in_load () =
  let at channels =
    Ideal.bandwidth ~link_bandwidth:10_000 ~links:354 ~channels ~avg_hops:3.9
  in
  Alcotest.(check bool) "decreasing" true (at 1000 > at 2000 && at 2000 > at 5000)

let test_ideal_of_graph () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  (* 4 directed links, avg hops = (1+1+1+1+2+2)/6 = 4/3. *)
  Alcotest.check loose "of_graph" (10_000. *. 4. /. (3. *. (4. /. 3.)))
    (Ideal.of_graph g ~channels:3)

let test_ideal_validation () =
  Alcotest.check_raises "channels" (Invalid_argument "Ideal.bandwidth: non-positive channel count")
    (fun () ->
      ignore (Ideal.bandwidth ~link_bandwidth:10 ~links:10 ~channels:0 ~avg_hops:1.))

(* Property: the chain solution is a genuine distribution and the average
   stays within the QoS range, for random stochastic matrices. *)
let random_stochastic rng n =
  let m = Matrix.create n n in
  for i = 0 to n - 1 do
    let row = Array.init n (fun _ -> Prng.float rng 1.) in
    let total = Array.fold_left ( +. ) 0. row in
    Array.iteri (fun j x -> Matrix.set m i j (x /. total)) row
  done;
  m

let qcheck_model_average_in_range =
  QCheck.Test.make ~name:"model average within QoS range" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let qos = Qos.make ~b_min:100 ~b_max:500 ~increment:100 () in
      let n = Qos.levels qos in
      let p =
        {
          Model.lambda = 0.5 +. Prng.float rng 2.;
          mu = 0.5 +. Prng.float rng 2.;
          gamma = Prng.float rng 0.5;
          p_f = 0.05 +. Prng.float rng 0.5;
          p_s = 0.05 +. Prng.float rng 0.4;
          a = random_stochastic rng n;
          b = random_stochastic rng n;
          t_mat = random_stochastic rng n;
        }
      in
      let pi = Ctmc.stationary (Model.build_regularized p) in
      let total = Array.fold_left ( +. ) 0. pi in
      let avg = Model.average_bandwidth_regularized p ~qos in
      Float.abs (total -. 1.) < 1e-9
      && Array.for_all (fun x -> x >= -1e-12) pi
      && avg >= 100. && avg <= 500.)

let () =
  Alcotest.run "model"
    [
      ( "chain",
        [
          Alcotest.test_case "figure 1 rates" `Quick test_build_rates_match_figure1;
          Alcotest.test_case "gamma pressure" `Quick test_gamma_adds_downward_pressure;
          Alcotest.test_case "upward A ignored" `Quick test_upward_triangle_of_a_ignored;
          Alcotest.test_case "average in range" `Quick test_average_bandwidth_in_range;
          Alcotest.test_case "contention monotone" `Quick test_more_contention_lower_average;
          Alcotest.test_case "validation" `Quick test_validate_rejects;
          Alcotest.test_case "levels mismatch" `Quick test_average_bandwidth_levels_mismatch;
          Alcotest.test_case "degenerate regularised" `Quick
            test_degenerate_chain_regularised_to_ceiling;
          Alcotest.test_case "regularisation negligible" `Quick
            test_regularisation_negligible_when_rates_exist;
          Alcotest.test_case "sensitivity signs" `Quick test_sensitivity_signs;
          Alcotest.test_case "sensitivity vs secant" `Quick test_sensitivity_matches_secant;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "probabilities" `Quick test_estimator_counts_and_probabilities;
          Alcotest.test_case "row-stochastic matrices" `Quick
            test_estimator_matrices_row_stochastic;
          Alcotest.test_case "event kinds separated" `Quick
            test_estimator_separates_event_kinds;
          Alcotest.test_case "level range" `Quick test_estimator_level_out_of_range;
          Alcotest.test_case "adaptation counts" `Quick test_estimator_adaptation_counts;
          Alcotest.test_case "params roundtrip" `Quick test_params_of_estimator_roundtrip;
        ] );
      ( "ideal",
        [
          Alcotest.test_case "formula" `Quick test_ideal_formula;
          Alcotest.test_case "monotone in load" `Quick test_ideal_monotone_in_load;
          Alcotest.test_case "of_graph" `Quick test_ideal_of_graph;
          Alcotest.test_case "validation" `Quick test_ideal_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_model_average_in_range ]);
    ]
