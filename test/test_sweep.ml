(* The deterministic domain pool: parallel sweeps must be bit-for-bit
   equal to sequential ones — results in submission order, merged worker
   metrics counting exactly what a single registry would — and a raising
   point must surface only after every domain has joined. *)

(* Sixteen small scenario points with distinct loads and seeds, cheap
   enough that even a single-core machine runs the parallel cases in
   seconds. *)
let points =
  List.init 16 (fun i ->
      {
        Scenario.default with
        Scenario.topology = Scenario.Waxman (Waxman.spec ~nodes:24 ~alpha:0.5 ~beta:0.3 ());
        capacity = Bandwidth.mbps 2;
        offered = 20 + (5 * i);
        warmup_events = 10;
        churn_events = 40;
        seed = i + 1;
      })

let run_point obs cfg = Scenario.run ~obs cfg

let test_parallel_equals_sequential () =
  let seq = List.map (fun cfg -> Scenario.run cfg) points in
  let par = Sweep.map ~jobs:4 run_point points in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "offered order preserved" a.Scenario.offered
        b.Scenario.offered;
      Alcotest.(check int) "same carried" a.Scenario.carried_initial
        b.Scenario.carried_initial;
      Alcotest.(check int) "same final population" a.Scenario.carried_final
        b.Scenario.carried_final;
      (* Bit-for-bit: no tolerance. *)
      Alcotest.(check bool) "same sim average" true
        (Float.equal a.Scenario.sim_avg_bandwidth b.Scenario.sim_avg_bandwidth);
      Alcotest.(check bool) "same model average" true
        (Float.equal a.Scenario.model_avg_bandwidth b.Scenario.model_avg_bandwidth))
    seq par

let counters_of obs =
  match Jsonx.member "counters" (Obs.metrics_json obs) with
  | Some c -> Jsonx.to_string c
  | None -> Alcotest.fail "metrics snapshot has no counters"

let test_merged_metrics_equal_sequential () =
  let live () = Obs.create ~metrics:(Metrics.create ()) () in
  let seq_obs = live () in
  ignore (Sweep.map ~jobs:1 ~obs:seq_obs run_point points);
  let par_obs = live () in
  ignore (Sweep.map ~jobs:4 ~obs:par_obs run_point points);
  Alcotest.(check string) "merged counters equal sequential registry's"
    (counters_of seq_obs) (counters_of par_obs)

let test_jobs_one_degenerates_to_map () =
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  let saw_parent = ref true in
  let out =
    Sweep.map ~jobs:1 ~obs
      (fun o x ->
        if o != obs then saw_parent := false;
        x * x)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list int)) "plain map" [ 1; 4; 9; 16; 25 ] out;
  Alcotest.(check bool) "caller's obs passed through, no fork" true !saw_parent;
  Alcotest.(check (list int)) "empty input" []
    (Sweep.map ~jobs:4 (fun _ (x : int) -> x) [])

let test_exception_propagates_after_join () =
  let finished = Atomic.make 0 in
  let f _ i =
    if i = 5 then failwith "boom 5"
    else if i = 11 then failwith "boom 11"
    else begin
      Atomic.incr finished;
      i
    end
  in
  Alcotest.check_raises "lowest-index failure wins" (Failure "boom 5") (fun () ->
      ignore (Sweep.map ~jobs:4 f (List.init 16 Fun.id)));
  (* Every non-raising point still ran: the pool joined all domains
     before re-raising. *)
  Alcotest.(check int) "all other points completed" 14 (Atomic.get finished)

let test_jobs_validation () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Sweep.map: jobs must be >= 1")
    (fun () -> ignore (Sweep.map ~jobs:0 (fun _ (x : int) -> x) [ 1 ]))

let test_more_jobs_than_points () =
  let out = Sweep.map ~jobs:64 (fun _ x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "surplus workers are harmless" [ 2; 3; 4 ] out

(* ------------------------------------------------------------------ *)
(* Open-loop replay                                                    *)

let test_open_loop_covers_all_ops () =
  let n = 200 in
  (* An immediate schedule: every op due at t=0 — pure throughput. *)
  let arrivals = Array.make n 0. in
  let hits = Array.make n 0 in
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  let report =
    Sweep.open_loop ~jobs:4 ~obs ~timer:"lg.latency" ~arrivals
      ~worker:(fun w -> w)
      (fun _ (_ : int) i -> hits.(i) <- hits.(i) + 1)
  in
  Alcotest.(check int) "sent" n report.Sweep.sent;
  Alcotest.(check bool)
    "every op ran exactly once" true
    (Array.for_all (fun h -> h = 1) hits);
  let tm = Metrics.timer (Obs.metrics obs) "lg.latency" in
  Alcotest.(check int) "every latency observed into the merged timer" n
    (Metrics.timer_count tm);
  Alcotest.(check bool) "p99 is non-negative" true
    (Metrics.timer_quantile tm 0.99 >= 0.)

let test_open_loop_round_robin_split () =
  let n = 40 and jobs = 3 in
  let arrivals = Array.make n 0. in
  let owner = Array.make n (-1) in
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  ignore
    (Sweep.open_loop ~jobs ~obs ~arrivals
       ~worker:(fun w -> w)
       (fun _ w i -> owner.(i) <- w));
  Alcotest.(check bool)
    "op i belongs to worker (i mod jobs)" true
    (Array.for_all Fun.id (Array.mapi (fun i w -> w = i mod jobs) owner))

let test_open_loop_paces_the_schedule () =
  (* 5 ops spaced 30 ms apart: the replay cannot finish before the last
     due time, and instantaneous ops must not be charged the wait. *)
  let arrivals = [| 0.; 0.03; 0.06; 0.09; 0.12 |] in
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  let report =
    Sweep.open_loop ~jobs:2 ~obs ~arrivals ~worker:(fun w -> w)
      (fun _ (_ : int) (_ : int) -> ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "wall %.3fs covers the schedule" report.Sweep.wall_s)
    true
    (report.Sweep.wall_s >= 0.12);
  let tm = Metrics.timer (Obs.metrics obs) "open_loop.latency" in
  Alcotest.(check bool)
    "an on-schedule no-op is fast at p50" true
    (Metrics.timer_quantile tm 0.5 < 0.03);
  Alcotest.(check bool) "lag is bounded by the wall" true
    (report.Sweep.max_lag_s <= report.Sweep.wall_s)

let test_open_loop_charges_backlog () =
  (* One worker, two ops due together, the first burns 50 ms: open-loop
     accounting must charge the second op its queueing delay. *)
  let arrivals = [| 0.; 0. |] in
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  ignore
    (Sweep.open_loop ~jobs:1 ~obs ~arrivals ~worker:(fun w -> w)
       (fun _ (_ : int) i -> if i = 0 then Unix.sleepf 0.05));
  let tm = Metrics.timer (Obs.metrics obs) "open_loop.latency" in
  Alcotest.(check bool)
    "the queued op inherits its predecessor's service time" true
    (Metrics.timer_quantile tm 0.99 >= 0.04)

let test_open_loop_on_complete () =
  (* [on_complete] fires once per op, in the owning worker's domain,
     with the same latency the merged timer records — per-index array
     cells are race-free because the round-robin split gives each index
     exactly one owner. *)
  let n = 60 and jobs = 3 in
  let arrivals = Array.make n 0. in
  let latencies = Array.make n (-1.) in
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  ignore
    (Sweep.open_loop ~jobs ~obs ~timer:"lg.latency" ~arrivals
       ~on_complete:(fun i latency -> latencies.(i) <- latency)
       ~worker:(fun w -> w)
       (fun _ (_ : int) (_ : int) -> ()));
  Alcotest.(check bool)
    "every op reported a non-negative latency" true
    (Array.for_all (fun l -> l >= 0.) latencies);
  let tm = Metrics.timer (Obs.metrics obs) "lg.latency" in
  Alcotest.(check int) "callback count matches the timer" n
    (Metrics.timer_count tm);
  let total = Array.fold_left ( +. ) 0. latencies in
  Alcotest.(check bool)
    "callback latencies sum close to the timer total" true
    (Float.abs (total -. Metrics.timer_total tm) < 1e-6 *. float_of_int n)

let test_open_loop_teardown_and_errors () =
  let closed = Atomic.make 0 in
  Alcotest.check_raises "worker exception propagates" (Failure "op 3") (fun () ->
      ignore
        (Sweep.open_loop ~jobs:2 ~obs:Obs.null ~arrivals:(Array.make 8 0.)
           ~worker:(fun w -> w)
           ~finish:(fun _ -> Atomic.incr closed)
           (fun _ (_ : int) i -> if i = 3 then failwith "op 3")));
  (* [finish] ran in every worker domain despite the failure. *)
  Alcotest.(check int) "every worker state torn down" 2 (Atomic.get closed)

let () =
  Alcotest.run "sweep"
    [
      ( "determinism",
        [
          Alcotest.test_case "parallel equals sequential" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "merged metrics" `Quick
            test_merged_metrics_equal_sequential;
        ] );
      ( "pool",
        [
          Alcotest.test_case "jobs=1 is plain map" `Quick
            test_jobs_one_degenerates_to_map;
          Alcotest.test_case "exception after join" `Quick
            test_exception_propagates_after_join;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
          Alcotest.test_case "more jobs than points" `Quick
            test_more_jobs_than_points;
        ] );
      ( "open-loop",
        [
          Alcotest.test_case "covers every op once" `Quick
            test_open_loop_covers_all_ops;
          Alcotest.test_case "round-robin split" `Quick
            test_open_loop_round_robin_split;
          Alcotest.test_case "paces the schedule" `Slow
            test_open_loop_paces_the_schedule;
          Alcotest.test_case "on_complete fires per op" `Quick
            test_open_loop_on_complete;
          Alcotest.test_case "charges backlog to queued ops" `Slow
            test_open_loop_charges_backlog;
          Alcotest.test_case "teardown and error propagation" `Quick
            test_open_loop_teardown_and_errors;
        ] );
    ]
