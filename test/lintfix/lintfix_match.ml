(* R2 fixtures: catch-alls over closed project variants. *)

let wildcard_hit (ev : Trace.event) =
  match ev with
  | Trace.Admit _ -> "admit"
  | _ -> "other" (* line 6: R2 *)

let binder_hit (op : Op.t) =
  match op with
  | Op.Fail _ -> 1
  | other -> 0 (* line 11: R2 *)

let function_hit = function
  | Trace.Reject _ -> true
  | _ -> false (* line 15: R2 *)

(* Clean controls: total match over Policy.t; catch-all over a
   non-protected (local) variant; plain fun binder. *)
let total_ok (p : Policy.t) =
  match p with
  | Policy.Equal_share -> 0
  | Policy.Proportional -> 1
  | Policy.Max_utility -> 2

type local = A | B

let local_ok (l : local) = match l with A -> 0 | _ -> 1

let lambda_ok = fun (ev : Trace.event) -> Trace.kind ev
