(* R2 fixtures: catch-alls over closed project variants. *)

let wildcard_hit (ev : Trace.event) =
  match ev with
  | Trace.Admit _ -> "admit"
  | _ -> "other" (* line 6: R2 *)

let binder_hit (op : Op.t) =
  match op with
  | Op.Fail _ -> 1
  | other -> 0 (* line 11: R2 *)

let function_hit = function
  | Trace.Reject _ -> true
  | _ -> false (* line 15: R2 *)

(* Clean controls: total match over Op.t; catch-all over a
   non-protected (local) variant; plain fun binder. *)
let total_ok (op : Op.t) =
  match op with
  | Op.Admit _ -> 0
  | Op.Terminate _ -> 1
  | Op.Change_qos _ -> 2
  | Op.Fail _ -> 3
  | Op.Repair _ -> 4
  | Op.Set_auto _ -> 5
  | Op.Redistribute_all -> 6

type local = A | B

let local_ok (l : local) = match l with A -> 0 | _ -> 1

let lambda_ok = fun (ev : Trace.event) -> Trace.kind ev
