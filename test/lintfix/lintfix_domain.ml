(* R6 fixtures: global observability state inside Sweep.map workers. *)

(* A mutator of the domain-local default, and a value that reaches it
   only transitively — the taint fix-point must catch both. *)
let install_metrics () = Obs.set_default (Obs.create ())

let helper () = install_metrics ()

let tainted_hit points =
  Sweep.map (fun _obs x -> helper (); x) points (* line 10: R6 (helper) *)

let direct_hit points =
  Sweep.map
    (fun _obs x ->
      ignore (Obs.default ()); (* line 15: R6 (direct read) *)
      x)
    points

(* Clean controls: a worker that records only into the Obs.t it is
   handed, and a mutator called outside any worker. *)
let worker_ok points =
  Sweep.map
    (fun wobs x ->
      Metrics.incr (Metrics.counter (Obs.metrics wobs) "points");
      x)
    points

let outside_ok points =
  install_metrics ();
  Sweep.map (fun _obs x -> x) points
