(* R7 fixtures: Sweep.map workers sharing top-level mutable state from
   another unit — directly, and through a two-deep call chain.  The
   Atomic counter is the sanctioned control. *)

let race_direct points =
  Sweep.map
    (fun _obs x ->
      Hashtbl.replace Lintfix_race_state.hits "direct" x; (* line 8: R7 *)
      x)
    points

let race_transitive points =
  Sweep.map
    (fun _obs x ->
      Lintfix_race_state.record "deep"; (* line 15: R7 (record -> bump -> hits) *)
      x)
    points

let total = Atomic.make 0

let atomic_ok points =
  Sweep.map
    (fun _obs x ->
      Atomic.incr total;
      x)
    points
