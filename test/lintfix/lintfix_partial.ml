(* R3 fixtures: partial stdlib functions in "library" code (the test
   passes --lib-prefix test/ so these count as library sources). *)

let hd_hit l = List.hd l (* line 4: R3 *)

let nth_hit l = List.nth l 3 (* line 6: R3 *)

let get_hit o = Option.get o (* line 8: R3 *)

let find_hit tbl k = Hashtbl.find tbl k (* line 10: R3 *)

(* Clean controls: a surrounding handler, and the _opt variants. *)
let handled_ok tbl k = try Hashtbl.find tbl k with Not_found -> 0

let match_exception_ok l =
  match List.hd l with x -> x | exception Failure _ -> 0

let opt_ok tbl k = Hashtbl.find_opt tbl k
