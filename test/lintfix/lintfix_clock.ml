(* R9 fixtures: the wall clock reached directly, through an alias, and
   through a two-deep re-export chain.  The monotonic Clock path is the
   control. *)

let now = Unix.gettimeofday (* line 5: R9 (aliased re-export) *)

let timestamp () = now () (* line 7: R9 (tainted: now) *)

let stamp_label () = Printf.sprintf "t=%f" (timestamp ()) (* line 9: R9 *)

let cpu_seconds () = Sys.time () (* line 11: R9 (direct read) *)

let mono_ok () = Clock.now ()
