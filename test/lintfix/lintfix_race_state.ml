(* R7 fixture state: a top-level mutable table, mutated two calls deep.
   Lives in its own unit so the race in lintfix_race.ml is genuinely
   cross-unit. *)

let hits : (string, int) Hashtbl.t = Hashtbl.create 16

let bump key =
  let n = Option.value ~default:0 (Hashtbl.find_opt hits key) in
  Hashtbl.replace hits key (n + 1)

let record key = bump key
