(* R5 fixtures: direct stdout printing from "library" code. *)

let endline_hit msg = print_endline msg (* line 3: R5 *)

let printf_hit n = Printf.printf "count=%d\n" n (* line 5: R5 *)

let format_hit n = Format.printf "count=%d@." n (* line 7: R5 *)

(* Clean controls: explicit channel, stderr, Buffer-based printing. *)
let fprintf_ok oc n = Printf.fprintf oc "count=%d\n" n

let stderr_ok msg = prerr_endline msg

let sprintf_ok n = Printf.sprintf "count=%d" n
