(* R8 fixtures: a fake event loop whose dispatch path hides a blocking
   read behind two wrappers, plus an unbounded traversal in the loop
   layer.  The loop's own select is the control: it calls dispatch, so
   it is never reachable *from* the dispatch root and stays unflagged. *)

let read_all fd buf = Unix.read fd buf 0 (Bytes.length buf) (* line 6: R8 *)

let fetch fd =
  let buf = Bytes.create 64 in
  let n = read_all fd buf in
  Bytes.sub_string buf 0 n

let conns : Unix.file_descr list ref = ref []

let dispatch fd =
  List.iter ignore !conns; (* line 16: R8 (unbounded in the loop layer) *)
  ignore (fetch fd)

let loop listener =
  while true do
    let ready, _, _ = Unix.select [ listener ] [] [] 1.0 in
    List.iter dispatch ready
  done
