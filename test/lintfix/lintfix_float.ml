(* R1 fixtures: polymorphic comparison instantiated at float.
   Line numbers are load-bearing — test_lint's goldens name them. *)

let eq_hit a b = a = b +. 1.0 (* line 4: R1 *)

let neq_hit a = a <> 0.0 (* line 6: R1 *)

let compare_hit (a : float) b = compare a b (* line 8: R1 *)

let sort_hit (l : float list) = List.sort compare l (* line 10: R1 *)

(* Clean controls: int comparison, Float.equal, Float.compare. *)
let int_ok a b = a = b + 1

let float_ok a b = Float.equal a b && Float.compare a b <= 0
