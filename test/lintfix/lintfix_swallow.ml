(* R4 fixtures: exception-swallowing try ... with. *)

let swallow_hit f = try f () with _ -> () (* line 3: R4 *)

let binder_swallow_hit f x =
  try f x with e -> ignore e (* line 6: R4 *)

(* Clean controls: narrowed handler, re-raise, conversion, assert. *)
let narrowed_ok f = try f () with Not_found -> ()

let reraise_ok f =
  try f ()
  with e ->
    prerr_endline "cleanup";
    raise e

let convert_ok f = try f () with _ -> failwith "wrapped"

let exit_ok f = try f () with _ -> exit 1
