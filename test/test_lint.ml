(* Tests for the typed-AST linter: golden findings per rule over the
   deliberately-bad fixture library (test/lintfix, compiled to .cmt by
   dune like any other library), baseline round-trip with stale
   detection, rule filtering, and JSON report validity via Jsonx.

   The fixture sources carry `(* line N: Rk *)` markers; this golden
   list is the contract between them and the rule engine. *)

let fixture_root = "lintfix/.lint_fixtures.objs/byte"

let config ?(rules = Lint.all_rules) () =
  {
    (Lint_driver.default_config ~roots:[ fixture_root ]) with
    Lint_driver.rules;
    (* Fixtures live under test/, not lib/: widen what counts as
       "library code" for the scoped rules R3/R5. *)
    lib_prefix = "test/";
  }

let run_exn ?rules () =
  match Lint_driver.run (config ?rules ()) with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "lint driver failed: %s" msg

let key (f : Lint.finding) = (Lint.rule_name f.rule, f.file, f.line)

let golden =
  [
    ("R9", "test/lintfix/lintfix_clock.ml", 5);
    ("R9", "test/lintfix/lintfix_clock.ml", 7);
    ("R9", "test/lintfix/lintfix_clock.ml", 9);
    ("R9", "test/lintfix/lintfix_clock.ml", 11);
    ("R6", "test/lintfix/lintfix_domain.ml", 10);
    ("R6", "test/lintfix/lintfix_domain.ml", 15);
    ("R8", "test/lintfix/lintfix_evloop.ml", 6);
    ("R8", "test/lintfix/lintfix_evloop.ml", 16);
    ("R7", "test/lintfix/lintfix_race.ml", 8);
    ("R7", "test/lintfix/lintfix_race.ml", 15);
    ("R1", "test/lintfix/lintfix_float.ml", 4);
    ("R1", "test/lintfix/lintfix_float.ml", 6);
    ("R1", "test/lintfix/lintfix_float.ml", 8);
    ("R1", "test/lintfix/lintfix_float.ml", 10);
    ("R2", "test/lintfix/lintfix_match.ml", 6);
    ("R2", "test/lintfix/lintfix_match.ml", 11);
    ("R2", "test/lintfix/lintfix_match.ml", 15);
    ("R3", "test/lintfix/lintfix_partial.ml", 4);
    ("R3", "test/lintfix/lintfix_partial.ml", 6);
    ("R3", "test/lintfix/lintfix_partial.ml", 8);
    ("R3", "test/lintfix/lintfix_partial.ml", 10);
    ("R5", "test/lintfix/lintfix_print.ml", 3);
    ("R5", "test/lintfix/lintfix_print.ml", 5);
    ("R5", "test/lintfix/lintfix_print.ml", 7);
    ("R4", "test/lintfix/lintfix_swallow.ml", 3);
    ("R4", "test/lintfix/lintfix_swallow.ml", 6);
  ]

let golden_sorted =
  List.sort compare golden

let key_t = Alcotest.(triple string string int)

(* --- golden findings --- *)

let test_golden_findings () =
  let got = List.map key (run_exn ()) in
  (* Driver output is sorted by file/line already; normalise both sides
     the same way so the test states set equality with multiplicity. *)
  Alcotest.(check (list key_t))
    "every fixture violation found, nothing else flagged" golden_sorted
    (List.sort compare got)

let test_severities () =
  List.iter
    (fun f ->
      let expected =
        match f.Lint.rule with
        | Lint.R3 | Lint.R5 -> Lint.Warning
        | _ -> Lint.Error
      in
      Alcotest.(check string)
        (Lint.rule_name f.Lint.rule ^ " severity")
        (Lint.severity_name expected)
        (Lint.severity_name (Lint.severity f.Lint.rule)))
    (run_exn ())

let test_deterministic () =
  let a = run_exn () and b = run_exn () in
  Alcotest.(check bool) "two runs agree exactly" true (a = b)

(* --- rule filtering --- *)

let test_rule_filter () =
  let only r = List.map key (run_exn ~rules:[ r ] ()) in
  let expect r =
    List.filter (fun (name, _, _) -> name = Lint.rule_name r) golden_sorted
  in
  List.iter
    (fun r ->
      Alcotest.(check (list key_t))
        ("--rules " ^ Lint.rule_name r)
        (expect r)
        (List.sort compare (only r)))
    Lint.all_rules

(* --- baseline --- *)

let test_baseline_suppresses_exactly () =
  let findings = run_exn () in
  let entries =
    List.map (Lint_baseline.of_finding ~reason:"fixture violation") findings
  in
  let { Lint_baseline.kept; suppressed; stale } =
    Lint_baseline.apply entries findings
  in
  Alcotest.(check int) "all suppressed" (List.length findings) suppressed;
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "nothing stale" 0 (List.length stale)

let test_baseline_partial_and_stale () =
  let findings = run_exn () in
  let r1_only =
    List.filter (fun (f : Lint.finding) -> f.rule = Lint.R1) findings
  in
  let stale_entry =
    {
      Lint_baseline.b_rule = Lint.R4;
      b_file = "test/lintfix/lintfix_float.ml";
      b_line = 999;
      b_reason = "points at nothing";
    }
  in
  let entries =
    stale_entry
    :: List.map (Lint_baseline.of_finding ~reason:"float fixture") r1_only
  in
  let { Lint_baseline.kept; suppressed; stale } =
    Lint_baseline.apply entries findings
  in
  Alcotest.(check int) "R1 findings suppressed" (List.length r1_only) suppressed;
  Alcotest.(check int) "the rest kept"
    (List.length findings - List.length r1_only)
    (List.length kept);
  Alcotest.(check bool) "no kept finding is R1" true
    (List.for_all (fun (f : Lint.finding) -> f.rule <> Lint.R1) kept);
  Alcotest.(check (list string)) "exactly the unmatched entry is stale"
    [ Lint_baseline.entry_to_string stale_entry ]
    (List.map Lint_baseline.entry_to_string stale)

let test_baseline_file_roundtrip () =
  let findings = run_exn () in
  let entries =
    List.map (Lint_baseline.of_finding ~reason:"fixture violation") findings
  in
  let path = Filename.temp_file "drqos_lint" ".baseline" in
  let oc = open_out path in
  output_string oc "# comment line\n\n";
  List.iter
    (fun e ->
      output_string oc (Lint_baseline.entry_to_string e);
      output_char oc '\n')
    entries;
  close_out oc;
  let back =
    match Lint_baseline.load path with
    | Ok back -> back
    | Error msg -> Alcotest.failf "baseline load failed: %s" msg
  in
  Sys.remove path;
  Alcotest.(check (list string)) "entries survive the file format"
    (List.map Lint_baseline.entry_to_string entries)
    (List.map Lint_baseline.entry_to_string back)

let test_baseline_rejects_garbage () =
  let rejects text =
    let path = Filename.temp_file "drqos_lint" ".baseline" in
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    let r = Lint_baseline.load path in
    Sys.remove path;
    match r with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "missing justification" true (rejects "R1 a.ml:3\n");
  Alcotest.(check bool) "unknown rule" true (rejects "R99 a.ml:3 because\n");
  Alcotest.(check bool) "bad location" true (rejects "R1 a.ml:x because\n");
  Alcotest.(check bool) "bare word" true (rejects "nonsense\n")

(* --- interprocedural engine --- *)

(* A tiny hand-built program: f -> g -> state (a mutable global).  The
   fix-points and chain renderers must agree with it exactly. *)

let mkpos line = { Lint_interproc.line; col = 0 }
let mkuse name = { Lint_interproc.u_name = name; u_pos = mkpos 1 }

let mkdef ?mutable_ name refs =
  {
    Lint_interproc.d_name = name;
    d_pos = mkpos 1;
    d_refs = List.map mkuse refs;
    d_blocking = [];
    d_wall = [];
    d_traversals = [];
    d_alloc_loop = [];
    d_mutable = mutable_;
  }

let tiny_summary =
  {
    Lint_interproc.s_source = "a.ml";
    s_modname = "A";
    s_defs =
      [
        mkdef ~mutable_:"ref" "A.state" [];
        mkdef "A.g" [ "A.state" ];
        mkdef "A.f" [ "A.g" ];
        mkdef "A.clean" [ "A.unrelated" ];
      ];
    s_spawns = [];
  }

let tiny_db () = Lint_interproc.build [ tiny_summary ]

module SS = Lint_interproc.SS

let test_engine_transitive () =
  let db = tiny_db () in
  let seeds = SS.singleton "A.state" in
  let tainted = Lint_interproc.transitive db ~seeds () in
  Alcotest.(check (list string))
    "taint climbs the call chain" [ "A.f"; "A.g" ] (SS.elements tainted);
  let stopped =
    Lint_interproc.transitive db ~seeds
      ~stop:(fun _ d -> d.Lint_interproc.d_name = "A.g")
      ()
  in
  Alcotest.(check (list string))
    "a sanitizer stops propagation" [] (SS.elements stopped)

let test_engine_witness () =
  let db = tiny_db () in
  let seeds = SS.singleton "A.state" in
  let tainted = Lint_interproc.transitive db ~seeds () in
  Alcotest.(check (option (list string)))
    "shortest chain back to the seed"
    (Some [ "A.f"; "A.g"; "A.state" ])
    (Lint_interproc.witness db ~seeds ~tainted "A.f");
  Alcotest.(check (option (list string)))
    "untainted names have no witness" None
    (Lint_interproc.witness db ~seeds ~tainted "A.clean")

let test_engine_reachable () =
  let db = tiny_db () in
  let roots = SS.singleton "A.f" in
  Alcotest.(check (list string))
    "forward closure from the root"
    [ "A.f"; "A.g"; "A.state" ]
    (SS.elements (Lint_interproc.reachable db ~roots));
  Alcotest.(check (option (list string)))
    "call path for messages"
    (Some [ "A.f"; "A.g"; "A.state" ])
    (Lint_interproc.path_from db ~roots "A.state");
  Alcotest.(check (option (list string)))
    "unreachable names have no path" None
    (Lint_interproc.path_from db ~roots "A.clean")

let test_summary_json_roundtrip () =
  let json =
    Jsonx.of_string (Jsonx.to_string (Lint_interproc.summary_to_json tiny_summary))
  in
  match Lint_interproc.summary_of_json json with
  | Some s ->
    Alcotest.(check bool) "summary survives the cache format" true
      (s = tiny_summary)
  | None -> Alcotest.fail "summary_of_json rejected its own output"

let interproc_rules = [ Lint.R6; Lint.R7; Lint.R8; Lint.R9 ]

let golden_interproc =
  List.filter
    (fun (name, _, _) ->
      List.mem name (List.map Lint.rule_name interproc_rules))
    golden_sorted

let run_cached path =
  let cfg =
    {
      (config ~rules:interproc_rules ()) with
      Lint_driver.summary_cache = Some path;
    }
  in
  match Lint_driver.run cfg with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "cached lint run failed: %s" msg

let test_summary_cache_roundtrip () =
  let path = Filename.temp_file "drqos_lint" ".cache" in
  Sys.remove path;
  let cold = run_cached path in
  Alcotest.(check bool) "cache file written" true (Sys.file_exists path);
  let warm = run_cached path in
  Alcotest.(check (list key_t))
    "cold run produces the interprocedural goldens" golden_interproc
    (List.sort compare (List.map key cold));
  Alcotest.(check bool) "warm (cache-hit) run agrees exactly" true
    (cold = warm);
  (* A corrupted cache must degrade to a cold run, never to garbage. *)
  let oc = open_out path in
  output_string oc "{not json";
  close_out oc;
  let recovered = run_cached path in
  Sys.remove path;
  Alcotest.(check bool) "corrupt cache ignored" true (cold = recovered)

let test_r8_roots_config () =
  let with_roots r8_roots =
    match
      Lint_driver.run
        { (config ~rules:[ Lint.R8 ] ()) with Lint_driver.r8_roots }
    with
    | Ok findings -> List.map key findings
    | Error msg -> Alcotest.failf "lint run failed: %s" msg
  in
  Alcotest.(check (list key_t)) "no roots, no findings" [] (with_roots []);
  Alcotest.(check bool)
    "rooting at the loop itself flags its own select" true
    (List.mem
       ("R8", "test/lintfix/lintfix_evloop.ml", 21)
       (with_roots [ "Lintfix_evloop.loop" ]))

(* --- JSON report --- *)

let test_json_report_parses () =
  let findings = run_exn () in
  let doc =
    Lint_driver.report_json ~findings ~suppressed:3
      ~stale:
        [
          {
            Lint_baseline.b_rule = Lint.R1;
            b_file = "gone.ml";
            b_line = 1;
            b_reason = "stale";
          };
        ]
  in
  let back = Jsonx.of_string (Jsonx.to_string doc) in
  let member k = Jsonx.member k back in
  (match member "findings" with
  | Some (Jsonx.List l) ->
    Alcotest.(check int) "one JSON object per finding"
      (List.length findings) (List.length l);
    List.iter2
      (fun (f : Lint.finding) j ->
        Alcotest.(check (option string))
          "rule field"
          (Some (Lint.rule_name f.rule))
          (Option.bind (Jsonx.member "rule" j) Jsonx.to_str);
        Alcotest.(check (option int))
          "line field" (Some f.line)
          (Option.bind (Jsonx.member "line" j) Jsonx.to_int))
      findings l
  | _ -> Alcotest.fail "findings is not a JSON list");
  Alcotest.(check (option int)) "suppressed count" (Some 3)
    (Option.bind (member "suppressed") Jsonx.to_int);
  (match member "stale_baseline" with
  | Some (Jsonx.List [ e ]) ->
    Alcotest.(check (option string))
      "stale entry file" (Some "gone.ml")
      (Option.bind (Jsonx.member "file" e) Jsonx.to_str)
  | _ -> Alcotest.fail "stale_baseline is not a one-element list");
  Alcotest.(check bool) "not clean" true
    (member "clean" = Some (Jsonx.Bool false));
  let clean = Lint_driver.report_json ~findings:[] ~suppressed:5 ~stale:[] in
  Alcotest.(check bool) "clean report" true
    (Jsonx.member "clean" (Jsonx.of_string (Jsonx.to_string clean))
    = Some (Jsonx.Bool true))

(* --- GitHub annotations --- *)

let test_github_annotation () =
  let f =
    {
      Lint.rule = Lint.R8;
      file = "lib/a.ml";
      line = 3;
      col = 7;
      message = "50% blocked: a,b\nnext";
    }
  in
  Alcotest.(check string) "workflow command with escapes"
    "::error file=lib/a.ml,line=3,col=7,title=R8::R8: 50%25 blocked: a,b%0Anext"
    (Lint_driver.github_annotation f);
  let w = { f with Lint.rule = Lint.R3; message = "partial" } in
  Alcotest.(check string) "warnings map to ::warning"
    "::warning file=lib/a.ml,line=3,col=7,title=R3::R3: partial"
    (Lint_driver.github_annotation w)

(* --- driver error reporting --- *)

let test_missing_root_is_error () =
  match
    Lint_driver.run
      (Lint_driver.default_config ~roots:[ "no/such/dir" ])
  with
  | Error msg ->
    Alcotest.(check bool) "error names the root" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "nonexistent root accepted"

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "golden findings over fixtures" `Quick
            test_golden_findings;
          Alcotest.test_case "severities" `Quick test_severities;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "rule filtering" `Quick test_rule_filter;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "suppresses exactly the listed findings" `Quick
            test_baseline_suppresses_exactly;
          Alcotest.test_case "partial baseline + stale entry" `Quick
            test_baseline_partial_and_stale;
          Alcotest.test_case "file round-trip" `Quick
            test_baseline_file_roundtrip;
          Alcotest.test_case "rejects malformed entries" `Quick
            test_baseline_rejects_garbage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "backward taint fix-point" `Quick
            test_engine_transitive;
          Alcotest.test_case "witness chains" `Quick test_engine_witness;
          Alcotest.test_case "forward reachability" `Quick
            test_engine_reachable;
          Alcotest.test_case "summary JSON round-trip" `Quick
            test_summary_json_roundtrip;
          Alcotest.test_case "summary cache round-trip" `Quick
            test_summary_cache_roundtrip;
          Alcotest.test_case "R8 roots are configurable" `Quick
            test_r8_roots_config;
        ] );
      ( "output",
        [
          Alcotest.test_case "JSON report parses with Jsonx" `Quick
            test_json_report_parses;
          Alcotest.test_case "GitHub annotations" `Quick
            test_github_annotation;
          Alcotest.test_case "missing root is an error" `Quick
            test_missing_root_is_error;
        ] );
    ]
