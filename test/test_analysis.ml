(* Tests for lib/analysis: trace replay arithmetic on hand-built event
   lists, and the empirical-vs-analytic audit / Perfetto export on a
   trace recorded from a real (deterministic) Drcomm run. *)

let approx = Alcotest.float 1e-9

(* --- replay arithmetic on in-memory event lists --- *)

let test_residency_arithmetic () =
  (* One channel: levels 0 for 2 units, 1 for 8 units, then gone. *)
  let events =
    [
      (0., Trace.Admit { channel = 0; direct = 0; indirect = 0 });
      (2., Trace.Upgrade { channel = 0; from_level = 0; to_level = 1 });
      (10., Trace.Terminate { channel = 0 });
    ]
  in
  let a = Analysis.of_events events in
  Alcotest.(check int) "event count" 3 (Analysis.event_count a);
  Alcotest.check approx "horizon" 10. (Analysis.horizon a);
  Alcotest.(check (list int)) "channels" [ 0 ] (Analysis.channels a);
  let r = Analysis.residency a in
  Alcotest.(check int) "levels observed" 2 (Array.length r);
  Alcotest.check approx "level 0 share" 0.2 r.(0);
  Alcotest.check approx "level 1 share" 0.8 r.(1);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "timeline" [ (0., 0); (2., 1) ]
    (Analysis.timeline a 0);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "unknown channel has no timeline" [] (Analysis.timeline a 99)

let test_residency_closes_live_channels () =
  (* A channel never terminated accrues up to the trace horizon. *)
  let events =
    [
      (0., Trace.Admit { channel = 1; direct = 0; indirect = 0 });
      (4., Trace.Upgrade { channel = 1; from_level = 0; to_level = 2 });
      (8., Trace.Link_repair { edge = 0 });
      (* horizon marker *)
    ]
  in
  let r = Analysis.residency (Analysis.of_events events) in
  Alcotest.(check int) "levels observed" 3 (Array.length r);
  Alcotest.check approx "level 0 share" 0.5 r.(0);
  Alcotest.check approx "level 2 share" 0.5 r.(2)

let test_upgrade_before_admit () =
  (* Admission emits the water-filling upgrades for the new channel
     before the Admit record; the replay must not lose that segment. *)
  let events =
    [
      (0., Trace.Upgrade { channel = 7; from_level = 0; to_level = 3 });
      (0., Trace.Admit { channel = 7; direct = 0; indirect = 0 });
      (5., Trace.Terminate { channel = 7 });
    ]
  in
  let a = Analysis.of_events events in
  let r = Analysis.residency a in
  Alcotest.check approx "all channel-time at level 3" 1. r.(3);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "timeline starts at from_level" [ (0., 0); (0., 3) ]
    (Analysis.timeline a 7)

let test_rejection_breakdown () =
  let events =
    [
      (1., Trace.Reject { reason = "no_primary_route" });
      (2., Trace.Reject { reason = "no_backup_route" });
      (3., Trace.Reject { reason = "no_primary_route" });
    ]
  in
  let a = Analysis.of_events events in
  Alcotest.(check (list (pair string int)))
    "per-reason counts"
    [ ("no_backup_route", 1); ("no_primary_route", 2) ]
    (Analysis.rejections a);
  Alcotest.(check (list (pair string int)))
    "event counts" [ ("reject", 3) ] (Analysis.event_counts a)

let test_failure_windows () =
  let events =
    [
      (0., Trace.Admit { channel = 0; direct = 0; indirect = 0 });
      (5., Trace.Link_fail { edge = 2 });
      (5., Trace.Retreat { channel = 0; from_level = 3; to_level = 0 });
      (5.5, Trace.Backup_activate { channel = 0; reprotected = true });
      (6., Trace.Drop { channel = 1 });
      (100., Trace.Link_fail { edge = 3 });
    ]
  in
  match Analysis.failure_windows ~window:10. (Analysis.of_events events) with
  | [ w1; w2 ] ->
    Alcotest.check approx "first failure time" 5. w1.Analysis.fail_time;
    Alcotest.(check int) "retreats" 1 w1.Analysis.retreats;
    Alcotest.(check int) "activations" 1 w1.Analysis.activations;
    Alcotest.(check int) "drops" 1 w1.Analysis.drops;
    (match w1.Analysis.first_activation_dt with
    | Some dt -> Alcotest.check approx "activation delay" 0.5 dt
    | None -> Alcotest.fail "missing first activation delay");
    Alcotest.(check int) "quiet window sees nothing" 0 w2.Analysis.retreats;
    Alcotest.(check bool)
      "quiet window has no activation" true
      (w2.Analysis.first_activation_dt = None)
  | ws ->
    Alcotest.fail
      (Printf.sprintf "expected 2 failure windows, got %d" (List.length ws))

let test_estimate_rates () =
  (* Bulk load at t = 0 must not count toward lambda; the two measured
     arrivals and one termination over a horizon of 10 must. *)
  let events =
    [
      (0., Trace.Admit { channel = 0; direct = 0; indirect = 0 });
      (2., Trace.Admit { channel = 1; direct = 1; indirect = 0 });
      (4., Trace.Reject { reason = "no_primary_route" });
      (6., Trace.Terminate { channel = 0 });
      (8., Trace.Link_fail { edge = 0 });
      (10., Trace.Link_repair { edge = 0 });
    ]
  in
  let r = Analysis.estimate_rates (Analysis.of_events events) in
  Alcotest.(check int) "arrivals" 2 r.Analysis.arrivals;
  Alcotest.check approx "lambda" 0.2 r.Analysis.lambda;
  Alcotest.check approx "mu" 0.1 r.Analysis.mu;
  Alcotest.check approx "gamma" 0.1 r.Analysis.gamma;
  (* The t = 2 admission saw one live channel, and it was directly
     chained: p_f = 1/1. *)
  Alcotest.(check int) "chain samples" 1 r.Analysis.chain_samples;
  Alcotest.check approx "p_f" 1. r.Analysis.p_f;
  Alcotest.check approx "p_s" 0. r.Analysis.p_s

let test_empty_trace () =
  let a = Analysis.of_events [] in
  Alcotest.(check int) "no events" 0 (Analysis.event_count a);
  Alcotest.check approx "zero horizon" 0. (Analysis.horizon a);
  Alcotest.(check (list int)) "no channels" [] (Analysis.channels a);
  let r = Analysis.estimate_rates a in
  Alcotest.check approx "zero lambda" 0. r.Analysis.lambda;
  Alcotest.check approx "zero p_f" 0. r.Analysis.p_f

(* --- a real recorded scenario: disjoint triangles ---

   k disjoint 3-node components, each with a primary edge u-v and a
   backup path u-w-v.  Channels on different triangles share no links,
   so every measured chaining probability is exactly zero and each
   channel water-fills straight to the QoS ceiling — both the empirical
   residency and the analytic chain concentrate at the top level, which
   is what the audit acceptance bound checks. *)

let triangles = 6

let triangle_graph () =
  let g = Graph.create (3 * triangles) in
  for i = 0 to triangles - 1 do
    let u = 3 * i and v = (3 * i) + 1 and w = (3 * i) + 2 in
    ignore (Graph.add_edge g u v);
    ignore (Graph.add_edge g u w);
    ignore (Graph.add_edge g w v)
  done;
  g

let run_triangle_scenario () =
  let path = Filename.temp_file "drqos_analysis" ".jsonl" in
  let oc = open_out path in
  let trace = Trace.create (Trace.jsonl_sink oc) in
  let obs =
    Obs.create ~metrics:(Metrics.create ()) ~trace ~spans:(Span.create ()) ()
  in
  let engine = Engine.create ~obs () in
  Obs.set_clock obs (fun () -> Engine.now engine);
  let net = Net_state.create (triangle_graph ()) in
  let svc = Drcomm.create ~obs net in
  let qos = Qos.paper_spec ~increment:50 in
  let admit i =
    match Drcomm.admit svc ~src:(3 * i) ~dst:((3 * i) + 1) ~qos with
    | Drcomm.Admitted (id, _) -> id
    | Drcomm.Rejected _ -> Alcotest.fail "triangle admission rejected"
  in
  (* Bulk load before the clock starts (excluded from rate estimates),
     then a few measured arrivals/terminations so lambda and mu stay
     positive; the last termination pins the trace horizon at t = 100. *)
  let c0 = admit 0 in
  let c1 = admit 1 in
  ignore (admit 2);
  ignore (Engine.schedule_at engine ~time:10. (fun _ -> ignore (admit 3)));
  ignore (Engine.schedule_at engine ~time:20. (fun _ -> ignore (admit 4)));
  ignore
    (Engine.schedule_at engine ~time:40. (fun _ ->
         ignore (Drcomm.terminate svc c0)));
  ignore
    (Engine.schedule_at engine ~time:100. (fun _ ->
         ignore (Drcomm.terminate svc c1)));
  Obs.span obs "measure" (fun () -> ignore (Engine.run engine));
  Obs.close obs;
  path

let with_triangle_trace f =
  let path = run_triangle_scenario () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_audit_acceptance () =
  with_triangle_trace @@ fun path ->
  let a = Analysis.of_file path in
  let r = Analysis.estimate_rates a in
  (* Disjoint triangles: nothing ever chains. *)
  Alcotest.check approx "measured p_f" 0. r.Analysis.p_f;
  Alcotest.check approx "measured p_s" 0. r.Analysis.p_s;
  Alcotest.check approx "measured gamma" 0. r.Analysis.gamma;
  Alcotest.(check bool) "measured lambda > 0" true (r.Analysis.lambda > 0.);
  let audit = Analysis.audit a in
  Alcotest.(check int) "paper spec levels" 9 audit.Analysis.levels;
  (* The acceptance bound: empirical residency within 0.05 (L_inf) of
     the analytic stationary distribution for the same rates. *)
  Alcotest.(check bool)
    (Printf.sprintf "audit L_inf %.4f < 0.05" audit.Analysis.linf)
    true
    (audit.Analysis.linf < 0.05);
  (* Both distributions concentrate at the QoS ceiling. *)
  Alcotest.(check bool)
    "empirical mass at top" true
    (audit.Analysis.empirical.(8) > 0.95);
  Alcotest.(check bool)
    "analytic mass at top" true
    (audit.Analysis.analytic.(8) > 0.95)

(* Walk a Perfetto document: per-track (pid, tid) timestamp ordering,
   balanced B/E nesting, and the nesting depth of named "B" events. *)
let walk_perfetto doc =
  let get name obj =
    match obj with
    | Jsonx.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let events =
    match get "traceEvents" doc with
    | Some (Jsonx.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let tracks = Hashtbl.create 4 in
  (* tid -> (last ts, open-span stack) *)
  let depth_of = Hashtbl.create 16 in
  (* "B" name -> max stack depth at open *)
  List.iter
    (fun ev ->
      let str name = match get name ev with Some (Jsonx.String s) -> s | _ -> "" in
      let num name =
        match get name ev with
        | Some (Jsonx.Float x) -> x
        | Some (Jsonx.Int i) -> float_of_int i
        | _ -> Alcotest.fail (Printf.sprintf "missing numeric %S field" name)
      in
      match str "ph" with
      | "M" -> ()
      | ("B" | "E" | "i") as ph ->
        let tid = int_of_float (num "tid") in
        let ts = num "ts" in
        let last, stack =
          match Hashtbl.find_opt tracks tid with
          | Some s -> s
          | None -> (neg_infinity, [])
        in
        if ts < last then
          Alcotest.fail
            (Printf.sprintf "track %d: ts %.3f < %.3f" tid ts last);
        let stack =
          match ph with
          | "B" ->
            let name = str "name" in
            let d = List.length stack in
            let prev =
              Option.value ~default:(-1) (Hashtbl.find_opt depth_of name)
            in
            Hashtbl.replace depth_of name (max prev d);
            name :: stack
          | "E" -> (
            match stack with
            | _ :: rest -> rest
            | [] -> Alcotest.fail (Printf.sprintf "track %d: E underflow" tid))
          | _ -> stack
        in
        Hashtbl.replace tracks tid (ts, stack)
      | ph -> Alcotest.fail (Printf.sprintf "unexpected phase %S" ph))
    events;
  Hashtbl.iter
    (fun tid (_, stack) ->
      if stack <> [] then
        Alcotest.fail (Printf.sprintf "track %d: %d unclosed spans" tid
                         (List.length stack)))
    tracks;
  depth_of

let test_perfetto_export () =
  with_triangle_trace @@ fun path ->
  let a = Analysis.of_file path in
  let doc = Analysis.to_perfetto a in
  (* The export must survive a JSON round-trip (i.e. be a valid file). *)
  let doc = Jsonx.of_string (Jsonx.to_string doc) in
  let depth_of = walk_perfetto doc in
  (match Hashtbl.find_opt depth_of "engine.run" with
  | Some d ->
    Alcotest.(check bool)
      (Printf.sprintf "engine.run nested (depth %d >= 1)" d)
      true (d >= 1)
  | None -> Alcotest.fail "no engine.run span in the export");
  Alcotest.(check bool)
    "profiler saw nesting too" true
    (Analysis.max_span_depth a >= 2)

let test_analysis_deterministic () =
  (* Same trace bytes, same analysis — byte-for-byte. *)
  with_triangle_trace @@ fun path ->
  let a1 = Analysis.of_file path and a2 = Analysis.of_file path in
  Alcotest.(check string)
    "perfetto export identical"
    (Jsonx.to_string (Analysis.to_perfetto a1))
    (Jsonx.to_string (Analysis.to_perfetto a2));
  Alcotest.(check (list (float 0.)))
    "residency identical"
    (Array.to_list (Analysis.residency a1))
    (Array.to_list (Analysis.residency a2));
  let d1 = (Analysis.audit a1).Analysis.linf
  and d2 = (Analysis.audit a2).Analysis.linf in
  Alcotest.check (Alcotest.float 0.) "audit identical" d1 d2

let test_top_spans_from_trace () =
  with_triangle_trace @@ fun path ->
  let a = Analysis.of_file path in
  let spans = Analysis.top_spans ~limit:3 a in
  Alcotest.(check bool) "some spans aggregated" true (spans <> []);
  Alcotest.(check bool) "limit respected" true (List.length spans <= 3);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Analysis.span_name ^ " count positive")
        true (s.Analysis.span_count > 0);
      Alcotest.(check bool)
        (s.Analysis.span_name ^ " self <= total")
        true
        (s.Analysis.span_self_s <= s.Analysis.span_total_s +. 1e-9))
    spans;
  (* Sorted by self time, descending. *)
  let selfs = List.map (fun s -> s.Analysis.span_self_s) spans in
  Alcotest.(check (list (float 0.)))
    "sorted by self time" (List.sort (Fun.flip compare) selfs) selfs

(* --- telemetry views --- *)

let snap ~t ~seq ~events ~d_events ~live =
  ( t,
    Trace.Snapshot
      {
        seq;
        events;
        d_events;
        live;
        live_by_level = [ live ];
        queue = 1;
        footprint = 2;
        peak_live = live;
        peak_queue = 1;
        hot = [ (3, d_events) ];
        counters = [ ("drcomm.admitted", d_events) ];
        slo_good = d_events;
        slo_bad = 0;
        slo_burn = 0.;
      } )

let beat ~t ~seq ~wall_s =
  ( t,
    Trace.Heartbeat
      {
        seq;
        wall_s;
        d_events = 100;
        ops_per_s = 100.;
        minor_words = 1e4;
        major_words = 1e2;
        heap_words = 1_000_000;
      } )

let test_snapshot_replay () =
  let events =
    [
      snap ~t:10. ~seq:0 ~events:100 ~d_events:100 ~live:5;
      snap ~t:20. ~seq:1 ~events:160 ~d_events:60 ~live:7;
      snap ~t:30. ~seq:2 ~events:200 ~d_events:40 ~live:6;
    ]
  in
  let a = Analysis.of_events events in
  let snaps = Analysis.snapshots a in
  Alcotest.(check int) "three snapshots" 3 (List.length snaps);
  let first = List.hd snaps in
  Alcotest.check approx "time" 10. first.Analysis.sn_time;
  Alcotest.(check int) "live" 5 first.Analysis.sn_live;
  Alcotest.(check bool) "hot links survive the round-trip" true
    (first.Analysis.sn_hot = [ (3, 100) ]);
  Alcotest.(check bool) "counters survive the round-trip" true
    (first.Analysis.sn_counters = [ ("drcomm.admitted", 100) ]);
  (* d_events / dt between consecutive same-stream snapshots. *)
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "ops series" [ (20., 6.); (30., 4.) ] (Analysis.ops_series a)

let test_ops_series_stream_boundary () =
  (* A concatenated sweep file restarts seq at 0 per point; the pair
     across the boundary must not produce a (negative-dt or bogus)
     point. *)
  let events =
    [
      snap ~t:10. ~seq:0 ~events:50 ~d_events:50 ~live:1;
      snap ~t:20. ~seq:1 ~events:90 ~d_events:40 ~live:1;
      (* next sweep point: seq restarts, sim clock restarts *)
      snap ~t:10. ~seq:0 ~events:30 ~d_events:30 ~live:1;
      snap ~t:20. ~seq:1 ~events:50 ~d_events:20 ~live:1;
    ]
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "one point per stream"
    [ (20., 4.); (20., 2.) ]
    (Analysis.ops_series (Analysis.of_events events))

let test_stall_detection () =
  (* Heartbeats every ~0.1 s with one 1.0 s gap: a stall at 3x the
     median cadence. *)
  let beats =
    [ 0.; 0.1; 0.2; 0.3; 1.3; 1.4; 1.5 ]
    |> List.mapi (fun i w -> beat ~t:(float_of_int i) ~seq:i ~wall_s:w)
  in
  let a = Analysis.of_events beats in
  Alcotest.(check int) "heartbeats replayed" 7
    (List.length (Analysis.heartbeats a));
  (match Analysis.stalls a with
  | [ (at, gap) ] ->
    Alcotest.check approx "stall located at the gap end" 1.3 at;
    Alcotest.check approx "gap width" 1.0 gap
  | l -> Alcotest.failf "expected 1 stall, got %d" (List.length l));
  (* With an explicit expected cadence larger than the gap, silence. *)
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "no stalls against a slow expected cadence" []
    (Analysis.stalls ~expected:1. a);
  Alcotest.(check bool) "factor <= 0 rejected" true
    (match Analysis.stalls ~factor:0. a with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stalls_need_two_beats () =
  let a = Analysis.of_events [ beat ~t:0. ~seq:0 ~wall_s:0. ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "single heartbeat, no stalls" [] (Analysis.stalls a)

let test_perfetto_counter_events () =
  let events =
    [
      snap ~t:10. ~seq:0 ~events:100 ~d_events:100 ~live:5;
      beat ~t:10. ~seq:0 ~wall_s:0.5;
    ]
  in
  let doc =
    Jsonx.of_string
      (Jsonx.to_string (Analysis.to_perfetto (Analysis.of_events events)))
  in
  let get name obj =
    match obj with Jsonx.Obj fields -> List.assoc_opt name fields | _ -> None
  in
  let evs =
    match get "traceEvents" doc with
    | Some (Jsonx.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let counters =
    List.filter (fun ev -> get "ph" ev = Some (Jsonx.String "C")) evs
  in
  (match counters with
  | [ c ] ->
    Alcotest.(check bool) "counter named telemetry" true
      (get "name" c = Some (Jsonx.String "telemetry"));
    let args = match get "args" c with Some a -> a | None -> Jsonx.Null in
    Alcotest.(check bool) "live series present" true
      (get "live" args = Some (Jsonx.Int 5))
  | l -> Alcotest.failf "expected 1 counter event, got %d" (List.length l));
  (* The heartbeat lands as an instant like other non-span events. *)
  Alcotest.(check bool) "heartbeat is an instant" true
    (List.exists
       (fun ev ->
         get "ph" ev = Some (Jsonx.String "i")
         && get "name" ev = Some (Jsonx.String "heartbeat"))
       evs)

(* --- Request anatomy --- *)

let req_trio ~t ~rid ~verb ?(ok = true) stages =
  let total_s = List.fold_left (fun acc (_, s) -> acc +. s) 0. stages in
  ((t, Trace.Req_begin { rid; verb })
  :: List.map (fun (stage, seconds) -> (t, Trace.Req_stage { rid; stage; seconds })) stages)
  @ [ (t, Trace.Req_end { rid; verb; ok; total_s }) ]

let test_request_views () =
  let stages rid =
    [
      ("queue", 0.001 *. float_of_int rid);
      ("parse", 0.0001);
      ("service", 0.01);
      ("redistribute", 0.002);
      ("write", 0.0005);
    ]
  in
  let events =
    List.concat_map
      (fun rid -> req_trio ~t:(float_of_int rid) ~rid ~verb:"admit" (stages rid))
      [ 1; 2; 3 ]
    @ [
        ( 4.,
          Trace.Req_client
            { rid = 2; verb = "admit"; sched_s = 0.2; latency_s = 0.05 } );
      ]
  in
  let a = Analysis.of_events events in
  Alcotest.(check (list string)) "well-formed trace checks clean" []
    (Analysis.request_check a);
  let reqs = Analysis.requests a in
  Alcotest.(check int) "one record per rid" 3 (List.length reqs);
  Alcotest.(check (list int)) "rid ascending" [ 1; 2; 3 ]
    (List.map (fun r -> r.Analysis.rq_rid) reqs);
  List.iter
    (fun r ->
      Alcotest.(check bool) "complete" true r.Analysis.rq_complete;
      Alcotest.(check bool) "has begin" true r.Analysis.rq_has_begin;
      Alcotest.(check int) "five stages" 5 (List.length r.Analysis.rq_stages))
    reqs;
  (match List.find (fun r -> r.Analysis.rq_rid = 2) reqs with
  | { Analysis.rq_client = Some (verb, sched_s, latency_s); _ } ->
    Alcotest.(check string) "client verb joined" "admit" verb;
    Alcotest.(check (float 0.)) "sched joined" 0.2 sched_s;
    Alcotest.(check (float 0.)) "latency joined" 0.05 latency_s
  | _ -> Alcotest.fail "rid 2 did not join its client record");
  let anatomy = Analysis.stage_anatomy a in
  Alcotest.(check (list string))
    "stages in pipeline order"
    [ "queue"; "parse"; "service"; "redistribute"; "write" ]
    (List.map (fun s -> s.Analysis.st_stage) anatomy);
  List.iter
    (fun s ->
      Alcotest.(check int) ("count of " ^ s.Analysis.st_stage) 3
        s.Analysis.st_count)
    anatomy;
  let queue = List.hd anatomy in
  Alcotest.(check (float 1e-12)) "queue total" 0.006 queue.Analysis.st_total_s;
  (* Exact nearest-rank quantiles over [0.001; 0.002; 0.003]. *)
  Alcotest.(check (float 1e-12)) "queue p50 exact" 0.002 queue.Analysis.st_p50_s;
  Alcotest.(check (float 1e-12)) "queue p99 exact" 0.003 queue.Analysis.st_p99_s;
  (* Tail = totals at or above the p99 of totals = request 3 alone;
     every share is that one request's stage composition, summing to 1
     over the five stages. *)
  let share_sum =
    List.fold_left (fun acc s -> acc +. s.Analysis.st_tail_share) 0. anatomy
  in
  Alcotest.(check (float 1e-9)) "tail shares sum to 1" 1.0 share_sum

let test_request_check_violations () =
  let a =
    Analysis.of_events
      [
        (1., Trace.Req_end { rid = 9; verb = "ping"; ok = true; total_s = 0.1 });
        (2., Trace.Req_begin { rid = 5; verb = "admit" });
        ( 2.,
          Trace.Req_stage { rid = 5; stage = "queue"; seconds = -0.001 } );
        (2., Trace.Req_end { rid = 5; verb = "admit"; ok = true; total_s = 0.1 });
        (3., Trace.Req_end { rid = 5; verb = "admit"; ok = true; total_s = 0.1 });
      ]
  in
  let violations = Analysis.request_check a in
  Alcotest.(check bool) "violations found" true (violations <> []);
  let mentions needle =
    List.exists
      (fun v ->
        (* substring match *)
        let lv = String.length v and ln = String.length needle in
        let rec go i = i + ln <= lv && (String.sub v i ln = needle || go (i + 1)) in
        go 0)
      violations
  in
  Alcotest.(check bool) "orphan req_end reported" true (mentions "rid 9");
  Alcotest.(check bool) "duplicate req_end reported" true (mentions "rid 5")

let test_requests_to_perfetto () =
  let a =
    Analysis.of_events
      (req_trio ~t:1. ~rid:1 ~verb:"admit"
         [ ("queue", 0.001); ("service", 0.01) ]
      @ [
          ( 2.,
            Trace.Req_client
              { rid = 1; verb = "admit"; sched_s = 0.; latency_s = 0.02 } );
        ])
  in
  let doc = Jsonx.to_string (Analysis.requests_to_perfetto a) in
  let has needle =
    let lv = String.length doc and ln = String.length needle in
    let rec go i = i + ln <= lv && (String.sub doc i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "queue track present" true (has "stage: queue");
  Alcotest.(check bool) "residual track present" true (has "network+queue");
  Alcotest.(check bool) "complete events" true (has "\"ph\":\"X\"")

let test_of_file_errors () =
  let path = Filename.temp_file "drqos_analysis_bad" ".jsonl" in
  let oc = open_out path in
  output_string oc "{\"t\": 0.0, \"ev\": \"admit\", \"channel\": 0, ";
  output_string oc "\"direct\": 0, \"indirect\": 0}\nnot json\n";
  close_out oc;
  (match Analysis.of_file path with
  | exception Jsonx.Line_error { line; _ } ->
    Alcotest.(check int) "syntax error names line 2" 2 line
  | _ -> Alcotest.fail "malformed line accepted");
  let oc = open_out path in
  output_string oc "{\"t\": 0.0, \"ev\": \"no_such_kind\"}\n";
  close_out oc;
  (match Analysis.of_file path with
  | exception Jsonx.Line_error { line; _ } ->
    Alcotest.(check int) "unknown kind names line 1" 1 line
  | _ -> Alcotest.fail "unknown event kind accepted");
  Sys.remove path

let () =
  Alcotest.run "analysis"
    [
      ( "replay",
        [
          Alcotest.test_case "residency arithmetic" `Quick
            test_residency_arithmetic;
          Alcotest.test_case "live channels close at horizon" `Quick
            test_residency_closes_live_channels;
          Alcotest.test_case "upgrade before admit" `Quick
            test_upgrade_before_admit;
          Alcotest.test_case "rejection breakdown" `Quick
            test_rejection_breakdown;
          Alcotest.test_case "failure windows" `Quick test_failure_windows;
          Alcotest.test_case "rate estimation" `Quick test_estimate_rates;
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
          Alcotest.test_case "of_file error reporting" `Quick
            test_of_file_errors;
        ] );
      ( "audit",
        [
          Alcotest.test_case "empirical vs analytic (acceptance)" `Quick
            test_audit_acceptance;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "perfetto export" `Quick test_perfetto_export;
          Alcotest.test_case "deterministic" `Quick test_analysis_deterministic;
          Alcotest.test_case "top spans" `Quick test_top_spans_from_trace;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "snapshot replay and ops series" `Quick
            test_snapshot_replay;
          Alcotest.test_case "ops series skips stream boundaries" `Quick
            test_ops_series_stream_boundary;
          Alcotest.test_case "stall detection on gapped heartbeats" `Quick
            test_stall_detection;
          Alcotest.test_case "stalls need two heartbeats" `Quick
            test_stalls_need_two_beats;
          Alcotest.test_case "request views and stage anatomy" `Quick
            test_request_views;
          Alcotest.test_case "request consistency violations" `Quick
            test_request_check_violations;
          Alcotest.test_case "request anatomy perfetto export" `Quick
            test_requests_to_perfetto;
          Alcotest.test_case "perfetto counter events" `Quick
            test_perfetto_counter_events;
        ] );
    ]
