(* Exit-code hygiene for the CLIs, table-driven.

   Convention (DESIGN.md): 0 = success, 1 = findings / failed run,
   2 = usage error. Every drqos_cli sub-command must exit 2 on an
   unknown flag (cmdliner's Cmd.Exit.cli_error is remapped in
   bin/drqos_cli.ml), and drqos_lint hand-rolls the same contract. *)

let cli = "../bin/drqos_cli.exe"
let lint = "../bin/drqos_lint.exe"

let exit_of cmd =
  (* Quiet both streams: these invocations exist only for their exit
     codes, and usage errors print to stderr. *)
  Sys.command (cmd ^ " >/dev/null 2>/dev/null")

let subcommands =
  [
    "run"; "sweep"; "topo"; "chain"; "analyze"; "perfdiff"; "fuzz"; "top";
    "serve"; "loadgen"; "latency";
  ]

let stderr_mentions_usage cmd =
  let tmp = Filename.temp_file "drqos_cli" ".stderr" in
  ignore (Sys.command (Printf.sprintf "%s >/dev/null 2>%s" cmd tmp));
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  let lower = String.lowercase_ascii text in
  let needle = "usage" in
  let nl = String.length needle in
  let rec scan i =
    i + nl <= String.length lower
    && (String.sub lower i nl = needle || scan (i + 1))
  in
  scan 0

let test_unknown_flag_exits_2 () =
  List.iter
    (fun sub ->
      let cmd = Printf.sprintf "%s %s --definitely-not-a-flag" cli sub in
      Alcotest.(check int) (sub ^ ": unknown flag exits 2") 2 (exit_of cmd);
      Alcotest.(check bool)
        (sub ^ ": usage printed on stderr")
        true
        (stderr_mentions_usage cmd))
    subcommands

let test_unknown_subcommand_exits_2 () =
  Alcotest.(check int) "unknown subcommand exits 2" 2
    (exit_of (cli ^ " no-such-subcommand"))

let test_help_exits_0 () =
  Alcotest.(check int) "top-level --help" 0 (exit_of (cli ^ " --help"));
  List.iter
    (fun sub ->
      Alcotest.(check int)
        (sub ^ " --help")
        0
        (exit_of (Printf.sprintf "%s %s --help" cli sub)))
    subcommands

let test_lint_usage_errors_exit_2 () =
  Alcotest.(check int) "unknown option" 2
    (exit_of (lint ^ " --definitely-not-a-flag"));
  Alcotest.(check int) "no roots" 2 (exit_of lint);
  Alcotest.(check int) "bad --format" 2
    (exit_of (lint ^ " --format yaml some-root"));
  Alcotest.(check int) "unknown rule id" 2
    (exit_of (lint ^ " --rules R99 some-root"));
  Alcotest.(check int) "--help exits 0" 0 (exit_of (lint ^ " --help"));
  Alcotest.(check int) "--list-rules exits 0" 0
    (exit_of (lint ^ " --list-rules"))

let test_lint_findings_exit_1 () =
  (* The fixture tree always has violations: exercising the "findings
     present" exit code end-to-end through the executable. *)
  Alcotest.(check int) "fixture violations exit 1" 1
    (exit_of
       (lint ^ " --lib-prefix test/ lintfix/.lint_fixtures.objs/byte"))

(* --- output-file open ordering --- *)

let test_bad_heartbeat_path_leaves_no_trace_file () =
  (* Regression: the heartbeat file used to be opened *after* make_obs
     had installed the trace sink, so `run --heartbeat /bad/path` would
     exit 1 with a freshly created (empty) trace file left behind and
     the at_exit flush running against a half-built context.  All
     output files now open before any sink is installed. *)
  let dir = Filename.temp_file "drqos_cli" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let trace = Filename.concat dir "trace.jsonl" in
  let code =
    exit_of
      (Printf.sprintf
         "%s run --offered 5 --churn 5 --warmup 0 --trace %s --heartbeat \
          /no/such/dir/hb.jsonl"
         cli trace)
  in
  let trace_exists = Sys.file_exists trace in
  if trace_exists then Sys.remove trace;
  Sys.rmdir dir;
  Alcotest.(check int) "bad heartbeat path exits 1" 1 code;
  Alcotest.(check bool) "trace file never created" false trace_exists

let test_bad_trace_path_exits_1 () =
  Alcotest.(check int) "bad --trace path exits 1" 1
    (exit_of
       (Printf.sprintf
          "%s run --offered 5 --churn 5 --warmup 0 --trace /no/such/dir/t.jsonl"
          cli));
  Alcotest.(check int) "bad --metrics path exits 1" 1
    (exit_of
       (Printf.sprintf
          "%s run --offered 5 --churn 5 --warmup 0 --metrics /no/such/dir/m.json"
          cli))

(* --- drqos_cli top --- *)

(* A hand-written heartbeat stream: wall beats every ~0.1 s with one
   1.0 s hole — `top` must call out the stall. *)
let gapped_heartbeat_fixture () =
  let path = Filename.temp_file "drqos_top" ".jsonl" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"t\":10,\"ev\":\"snapshot\",\"seq\":0,\"events\":100,\"d_events\":100,\
     \"live\":5,\"levels\":[2,3],\"queue\":1,\"footprint\":2,\"peak_live\":5,\
     \"peak_queue\":1,\"hot\":[[7,40]],\"counters\":{\"drcomm.admitted\":5}}\n";
  Printf.fprintf oc
    "{\"t\":20,\"ev\":\"snapshot\",\"seq\":1,\"events\":160,\"d_events\":60,\
     \"live\":6,\"levels\":[2,4],\"queue\":1,\"footprint\":2,\"peak_live\":6,\
     \"peak_queue\":1,\"hot\":[[7,55]],\"counters\":{}}\n";
  List.iteri
    (fun i w ->
      Printf.fprintf oc
        "{\"t\":%d,\"ev\":\"heartbeat\",\"seq\":%d,\"wall_s\":%g,\
         \"d_events\":64,\"ops_per_s\":640,\"minor_words\":1000,\
         \"major_words\":10,\"heap_words\":100000}\n"
        (20 + i) i w)
    [ 0.; 0.1; 0.2; 0.3; 1.3; 1.4 ];
  close_out oc;
  path

let output_of cmd =
  let tmp = Filename.temp_file "drqos_cli" ".stdout" in
  let code = Sys.command (Printf.sprintf "%s >%s 2>/dev/null" cmd tmp) in
  let ic = open_in tmp in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  (code, text)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_top_reports_stalls () =
  let path = gapped_heartbeat_fixture () in
  let code, out = output_of (Printf.sprintf "%s top %s" cli path) in
  Sys.remove path;
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check bool) "snapshot summary rendered" true
    (contains ~sub:"2 snapshots" out);
  Alcotest.(check bool) "level breakdown rendered" true
    (contains ~sub:"S1:4" out);
  Alcotest.(check bool) "hottest link rendered" true (contains ~sub:"7:55" out);
  Alcotest.(check bool) "the 1s gap is flagged" true
    (contains ~sub:"STALLS (1)" out)

let test_top_clean_stream_no_stalls () =
  let path = gapped_heartbeat_fixture () in
  let code, out =
    output_of (Printf.sprintf "%s top --stall-factor 20 %s" cli path)
  in
  Sys.remove path;
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check bool) "no stalls at a forgiving factor" true
    (contains ~sub:"no stalls" out)

let test_top_errors () =
  Alcotest.(check int) "unreadable file exits 1" 1
    (exit_of (cli ^ " top /no/such/heartbeat.jsonl"));
  Alcotest.(check int) "missing positional exits 2" 2 (exit_of (cli ^ " top"));
  Alcotest.(check int) "non-positive stall factor exits 2" 2
    (exit_of (cli ^ " top --stall-factor 0 /dev/null"))

(* --- drqos_cli latency --- *)

(* A hand-written server trace (one traced admit) plus its client-side
   record — the smallest joinable pair. *)
let request_trace_fixture ~consistent () =
  let path = Filename.temp_file "drqos_latency" ".jsonl" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"t\":1,\"ev\":\"req_begin\",\"rid\":3,\"verb\":\"admit\"}\n";
  List.iter
    (fun (stage, s) ->
      Printf.fprintf oc
        "{\"t\":1,\"ev\":\"req_stage\",\"rid\":3,\"stage\":\"%s\",\
         \"seconds\":%g}\n"
        stage s)
    [
      ("queue", 0.001); ("parse", 0.0001); ("service", 0.01);
      ("redistribute", 0.002); ("write", 0.0004);
    ];
  Printf.fprintf oc
    "{\"t\":1,\"ev\":\"req_end\",\"rid\":3,\"verb\":\"admit\",\"ok\":true,\
     \"total_s\":0.0135}\n";
  if not consistent then
    (* An orphan req_end: the --check gate must reject the trace. *)
    Printf.fprintf oc
      "{\"t\":2,\"ev\":\"req_end\",\"rid\":9,\"verb\":\"ping\",\"ok\":true,\
       \"total_s\":0.001}\n";
  Printf.fprintf oc
    "{\"t\":3,\"ev\":\"req_client\",\"rid\":3,\"verb\":\"admit\",\
     \"sched_s\":0.5,\"latency_s\":0.02}\n";
  close_out oc;
  path

let test_latency_anatomy () =
  let path = request_trace_fixture ~consistent:true () in
  let code, out =
    output_of (Printf.sprintf "%s latency --check %s" cli path)
  in
  Sys.remove path;
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check bool) "join counted" true
    (contains ~sub:"1 joined with a client record" out);
  Alcotest.(check bool) "stage table rendered" true
    (contains ~sub:"redistribute" out);
  Alcotest.(check bool) "slowest requests listed" true
    (contains ~sub:"slowest requests" out);
  Alcotest.(check bool) "check passes" true (contains ~sub:"check: ok" out)

let test_latency_check_gate () =
  let path = request_trace_fixture ~consistent:false () in
  let code = exit_of (Printf.sprintf "%s latency --check %s" cli path) in
  let code_nocheck = exit_of (Printf.sprintf "%s latency %s" cli path) in
  Sys.remove path;
  Alcotest.(check int) "inconsistent trace fails --check" 1 code;
  Alcotest.(check int) "without --check it only reports" 0 code_nocheck

let test_latency_errors () =
  Alcotest.(check int) "missing positional exits 2" 2
    (exit_of (cli ^ " latency"));
  Alcotest.(check int) "unreadable file exits 1" 1
    (exit_of (cli ^ " latency /no/such/trace.jsonl"))

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "unknown flag per sub-command" `Quick
            test_unknown_flag_exits_2;
          Alcotest.test_case "unknown subcommand" `Quick
            test_unknown_subcommand_exits_2;
          Alcotest.test_case "--help" `Quick test_help_exits_0;
          Alcotest.test_case "drqos_lint usage errors" `Quick
            test_lint_usage_errors_exit_2;
          Alcotest.test_case "drqos_lint findings" `Quick
            test_lint_findings_exit_1;
        ] );
      ( "output-files",
        [
          Alcotest.test_case "bad heartbeat path leaves no trace file" `Quick
            test_bad_heartbeat_path_leaves_no_trace_file;
          Alcotest.test_case "bad trace/metrics paths exit 1" `Quick
            test_bad_trace_path_exits_1;
        ] );
      ( "top",
        [
          Alcotest.test_case "stall detection on a gapped stream" `Quick
            test_top_reports_stalls;
          Alcotest.test_case "clean stream reports no stalls" `Quick
            test_top_clean_stream_no_stalls;
          Alcotest.test_case "error exit codes" `Quick test_top_errors;
        ] );
      ( "latency",
        [
          Alcotest.test_case "anatomy over a joinable pair" `Quick
            test_latency_anatomy;
          Alcotest.test_case "--check gates on consistency" `Quick
            test_latency_check_gate;
          Alcotest.test_case "error exit codes" `Quick test_latency_errors;
        ] );
    ]
