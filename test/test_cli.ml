(* Exit-code hygiene for the CLIs, table-driven.

   Convention (DESIGN.md): 0 = success, 1 = findings / failed run,
   2 = usage error. Every drqos_cli sub-command must exit 2 on an
   unknown flag (cmdliner's Cmd.Exit.cli_error is remapped in
   bin/drqos_cli.ml), and drqos_lint hand-rolls the same contract. *)

let cli = "../bin/drqos_cli.exe"
let lint = "../bin/drqos_lint.exe"

let exit_of cmd =
  (* Quiet both streams: these invocations exist only for their exit
     codes, and usage errors print to stderr. *)
  Sys.command (cmd ^ " >/dev/null 2>/dev/null")

let subcommands =
  [ "run"; "sweep"; "topo"; "chain"; "analyze"; "perfdiff"; "fuzz" ]

let stderr_mentions_usage cmd =
  let tmp = Filename.temp_file "drqos_cli" ".stderr" in
  ignore (Sys.command (Printf.sprintf "%s >/dev/null 2>%s" cmd tmp));
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  let lower = String.lowercase_ascii text in
  let needle = "usage" in
  let nl = String.length needle in
  let rec scan i =
    i + nl <= String.length lower
    && (String.sub lower i nl = needle || scan (i + 1))
  in
  scan 0

let test_unknown_flag_exits_2 () =
  List.iter
    (fun sub ->
      let cmd = Printf.sprintf "%s %s --definitely-not-a-flag" cli sub in
      Alcotest.(check int) (sub ^ ": unknown flag exits 2") 2 (exit_of cmd);
      Alcotest.(check bool)
        (sub ^ ": usage printed on stderr")
        true
        (stderr_mentions_usage cmd))
    subcommands

let test_unknown_subcommand_exits_2 () =
  Alcotest.(check int) "unknown subcommand exits 2" 2
    (exit_of (cli ^ " no-such-subcommand"))

let test_help_exits_0 () =
  Alcotest.(check int) "top-level --help" 0 (exit_of (cli ^ " --help"));
  List.iter
    (fun sub ->
      Alcotest.(check int)
        (sub ^ " --help")
        0
        (exit_of (Printf.sprintf "%s %s --help" cli sub)))
    subcommands

let test_lint_usage_errors_exit_2 () =
  Alcotest.(check int) "unknown option" 2
    (exit_of (lint ^ " --definitely-not-a-flag"));
  Alcotest.(check int) "no roots" 2 (exit_of lint);
  Alcotest.(check int) "bad --format" 2
    (exit_of (lint ^ " --format yaml some-root"));
  Alcotest.(check int) "unknown rule id" 2
    (exit_of (lint ^ " --rules R99 some-root"));
  Alcotest.(check int) "--help exits 0" 0 (exit_of (lint ^ " --help"));
  Alcotest.(check int) "--list-rules exits 0" 0
    (exit_of (lint ^ " --list-rules"))

let test_lint_findings_exit_1 () =
  (* The fixture tree always has violations: exercising the "findings
     present" exit code end-to-end through the executable. *)
  Alcotest.(check int) "fixture violations exit 1" 1
    (exit_of
       (lint ^ " --lib-prefix test/ lintfix/.lint_fixtures.objs/byte"))

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "unknown flag per sub-command" `Quick
            test_unknown_flag_exits_2;
          Alcotest.test_case "unknown subcommand" `Quick
            test_unknown_subcommand_exits_2;
          Alcotest.test_case "--help" `Quick test_help_exits_0;
          Alcotest.test_case "drqos_lint usage errors" `Quick
            test_lint_usage_errors_exit_2;
          Alcotest.test_case "drqos_lint findings" `Quick
            test_lint_findings_exit_1;
        ] );
    ]
