(* Tests for the discrete-event substrate and statistics. *)

let approx = Alcotest.float 1e-9

(* --- Event queue --- *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:3. "c");
  ignore (Event_queue.add q ~time:1. "a");
  ignore (Event_queue.add q ~time:2. "b");
  let pop () = Option.get (Event_queue.pop q) in
  Alcotest.(check (pair (float 0.) string)) "first" (1., "a") (pop ());
  Alcotest.(check (pair (float 0.) string)) "second" (2., "b") (pop ());
  Alcotest.(check (pair (float 0.) string)) "third" (3., "c") (pop ());
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None)

let test_queue_fifo_on_ties () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:1. "first");
  ignore (Event_queue.add q ~time:1. "second");
  ignore (Event_queue.add q ~time:1. "third");
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] order

let test_queue_cancel () =
  let q = Event_queue.create () in
  let h1 = Event_queue.add q ~time:1. "a" in
  ignore (Event_queue.add q ~time:2. "b");
  Alcotest.(check bool) "cancel pending" true (Event_queue.cancel q h1);
  Alcotest.(check bool) "double cancel" false (Event_queue.cancel q h1);
  Alcotest.(check int) "one live" 1 (Event_queue.size q);
  Alcotest.(check (pair (float 0.) string)) "skips cancelled" (2., "b")
    (Option.get (Event_queue.pop q))

let test_queue_cancel_after_fire () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1. "a" in
  ignore (Event_queue.pop q);
  Alcotest.(check bool) "cancel after fire" false (Event_queue.cancel q h)

let test_queue_peek () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  let h = Event_queue.add q ~time:5. "x" in
  Alcotest.(check (option (float 0.))) "peek" (Some 5.) (Event_queue.peek_time q);
  ignore (Event_queue.cancel q h);
  Alcotest.(check (option (float 0.))) "peek skips cancelled" None
    (Event_queue.peek_time q);
  Alcotest.(check bool) "empty again" true (Event_queue.is_empty q)

let test_queue_non_finite_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: non-finite time")
    (fun () -> ignore (Event_queue.add q ~time:Float.nan "x"))

(* Regression: the queue once retained every cancelled and popped slot
   until the matching heap entry drained, so a churn workload under a
   far-future long-lived timer grew without bound.  Storage must stay
   proportional to the *live* population, not to the total ever added. *)
let test_queue_footprint_bounded () =
  let q = Event_queue.create () in
  (* Long-lived timers parked far in the future... *)
  for i = 1 to 10 do
    ignore (Event_queue.add q ~time:(1e6 +. float_of_int i) "long-lived")
  done;
  (* ...while 10k transient events churn through underneath them. *)
  for i = 1 to 10_000 do
    let h = Event_queue.add q ~time:(float_of_int i) "transient" in
    if i mod 3 = 0 then ignore (Event_queue.cancel q h)
    else ignore (Event_queue.pop q)
  done;
  Alcotest.(check int) "live population" 10 (Event_queue.size q);
  Alcotest.(check bool)
    (Printf.sprintf "footprint O(live), got %d" (Event_queue.footprint q))
    true
    (Event_queue.footprint q <= 50)

let test_queue_many_random () =
  let q = Event_queue.create () in
  let rng = Prng.create 5 in
  let times = List.init 1000 (fun _ -> Prng.float rng 100.) in
  List.iter (fun t -> ignore (Event_queue.add q ~time:t ())) times;
  let rec drain last acc =
    match Event_queue.pop q with
    | None -> acc
    | Some (t, ()) ->
      Alcotest.(check bool) "monotone" true (t >= last);
      drain t (acc + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain neg_infinity 0)

(* --- Engine --- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2. (fun _ -> log := "b" :: !log));
  ignore (Engine.schedule e ~delay:1. (fun _ -> log := "a" :: !log));
  ignore (Engine.run e);
  Alcotest.(check (list string)) "order" [ "b"; "a" ] !log;
  Alcotest.check approx "clock at last event" 2. (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0. in
  ignore
    (Engine.schedule e ~delay:1. (fun e ->
         ignore (Engine.schedule e ~delay:1.5 (fun e -> fired := Engine.now e))));
  ignore (Engine.run e);
  Alcotest.check approx "nested time" 2.5 !fired

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    ignore (Engine.schedule engine ~delay:1. tick)
  in
  ignore (Engine.schedule e ~delay:1. tick);
  let handled = Engine.run ~until:5.5 e in
  Alcotest.(check int) "five events" 5 handled;
  Alcotest.check approx "clock clamped to until" 5.5 (Engine.now e);
  Alcotest.(check int) "next still pending" 1 (Engine.pending e)

let test_engine_max_events () =
  let e = Engine.create () in
  let rec tick engine = ignore (Engine.schedule engine ~delay:1. tick) in
  ignore (Engine.schedule e ~delay:1. tick);
  let handled = Engine.run ~max_events:7 e in
  Alcotest.(check int) "stopped by budget" 7 handled

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1. (fun _ -> fired := true) in
  Alcotest.(check bool) "cancelled" true (Engine.cancel e h);
  ignore (Engine.run e);
  Alcotest.(check bool) "did not fire" false !fired

let test_engine_past_rejected () =
  let e = Engine.create ~start_time:10. () in
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:9. (fun _ -> ())))

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  ignore (Engine.schedule e ~delay:1. (fun _ -> ()));
  Alcotest.(check bool) "one step" true (Engine.step e)

(* --- heartbeats --- *)

let test_engine_heartbeat_boundaries () =
  (* Events at t = 3, 7, 12, 25; heartbeats every 10.  The boundary at
     10 fires before the t = 12 event, at 20 before the t = 25 event,
     each with the clock set to the boundary instant — so the beat
     sequence is a pure function of the event stream. *)
  let e = Engine.create () in
  let beats = ref [] in
  let seen = ref [] in
  List.iter
    (fun time ->
      ignore (Engine.schedule_at e ~time (fun e -> seen := Engine.now e :: !seen)))
    [ 3.; 7.; 12.; 25. ];
  Engine.on_heartbeat e ~every:10. (fun e ->
      beats := (Engine.now e, Engine.dispatched e) :: !beats);
  ignore (Engine.run e);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "beats at boundaries, before the crossing event"
    [ (10., 2); (20., 3) ]
    (List.rev !beats);
  Alcotest.(check (list (float 1e-9)))
    "events undisturbed" [ 3.; 7.; 12.; 25. ] (List.rev !seen);
  Alcotest.(check int) "dispatched counts engine-side" 4 (Engine.dispatched e)

let test_engine_heartbeat_deterministic () =
  (* Same schedule, same beats — twice. *)
  let run () =
    let e = Engine.create () in
    let beats = ref [] in
    for i = 1 to 50 do
      ignore (Engine.schedule_at e ~time:(float_of_int i *. 1.7) (fun _ -> ()))
    done;
    Engine.on_heartbeat e ~every:7. (fun e ->
        beats := (Engine.now e, Engine.dispatched e, Engine.pending e) :: !beats);
    ignore (Engine.run e);
    List.rev !beats
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "beat streams identical" true (a = b);
  Alcotest.(check bool) "beats happened" true (a <> [])

let test_engine_heartbeat_respects_until () =
  let e = Engine.create () in
  let beats = ref 0 in
  ignore (Engine.schedule_at e ~time:100. (fun _ -> ()));
  Engine.on_heartbeat e ~every:10. (fun _ -> incr beats);
  ignore (Engine.run ~until:35. e);
  (* Boundaries 10, 20, 30 lie within [0, 35]; 40+ must not fire even
     though an event sits at t = 100. *)
  Alcotest.(check int) "only boundaries <= until fire" 3 !beats

let test_engine_heartbeat_validates () =
  let e = Engine.create () in
  Alcotest.(check bool) "every <= 0 rejected" true
    (match Engine.on_heartbeat e ~every:0. (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "wall every <= 0 rejected" true
    (match Engine.on_wall_heartbeat e ~every_s:(-1.) (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_engine_wall_heartbeat_fires () =
  (* A zero-interval wall heartbeat fires at every 64-event poll. *)
  let e = Engine.create () in
  let beats = ref 0 in
  for i = 1 to 200 do
    ignore (Engine.schedule_at e ~time:(float_of_int i) (fun _ -> ()))
  done;
  Engine.on_wall_heartbeat e ~every_s:1e-9 (fun _ -> incr beats);
  ignore (Engine.run e);
  Alcotest.(check int) "one beat per 64-event poll" (200 / 64) !beats

(* --- Welford --- *)

let test_welford_known () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Welford.count w);
  Alcotest.check approx "mean" 5. (Stats.Welford.mean w);
  Alcotest.check approx "sample variance" (32. /. 7.) (Stats.Welford.variance w);
  Alcotest.check approx "min" 2. (Stats.Welford.min_value w);
  Alcotest.check approx "max" 9. (Stats.Welford.max_value w)

let test_welford_empty () =
  let w = Stats.Welford.create () in
  Alcotest.check approx "mean 0" 0. (Stats.Welford.mean w);
  Alcotest.check approx "variance 0" 0. (Stats.Welford.variance w)

let test_welford_ci () =
  let w = Stats.Welford.create () in
  for i = 1 to 100 do
    Stats.Welford.add w (float_of_int (i mod 10))
  done;
  let lo, hi = Stats.Welford.confidence_interval w in
  let mean = Stats.Welford.mean w in
  Alcotest.(check bool) "contains mean" true (lo <= mean && mean <= hi);
  Alcotest.(check bool) "non-degenerate" true (hi > lo)

let test_welford_merge () =
  let all = Stats.Welford.create () in
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  let rng = Prng.create 9 in
  for i = 1 to 1000 do
    let x = Prng.float rng 10. in
    Stats.Welford.add all x;
    Stats.Welford.add (if i <= 400 then a else b) x
  done;
  let merged = Stats.Welford.merge a b in
  Alcotest.check (Alcotest.float 1e-7) "mean" (Stats.Welford.mean all)
    (Stats.Welford.mean merged);
  Alcotest.check (Alcotest.float 1e-6) "variance" (Stats.Welford.variance all)
    (Stats.Welford.variance merged);
  Alcotest.(check int) "count" 1000 (Stats.Welford.count merged)

(* --- Timed average --- *)

let test_timed_average_piecewise () =
  let t = Stats.Timed_average.create ~start:0. ~value:10. in
  Stats.Timed_average.update t ~time:2. ~value:20.;
  (* 10 for 2s, then 20 for 2s -> 15. *)
  Alcotest.check approx "average" 15. (Stats.Timed_average.average t ~upto:4.);
  Alcotest.check approx "current" 20. (Stats.Timed_average.value t)

let test_timed_average_instant_double_update () =
  let t = Stats.Timed_average.create ~start:0. ~value:1. in
  Stats.Timed_average.update t ~time:1. ~value:100.;
  Stats.Timed_average.update t ~time:1. ~value:2.;
  (* The 100 lasted zero time. *)
  Alcotest.check approx "average" 1.5 (Stats.Timed_average.average t ~upto:2.)

let test_timed_average_empty_window () =
  let t = Stats.Timed_average.create ~start:5. ~value:42. in
  Alcotest.check approx "empty window" 42. (Stats.Timed_average.average t ~upto:5.)

let test_timed_average_monotonicity_check () =
  let t = Stats.Timed_average.create ~start:0. ~value:1. in
  Stats.Timed_average.update t ~time:2. ~value:1.;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timed_average.update: time went backwards") (fun () ->
      Stats.Timed_average.update t ~time:1. ~value:1.)

(* --- Histogram --- *)

let test_histogram_buckets () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  List.iter (Stats.Histogram.add h) [ 0.; 1.9; 2.; 5.; 9.9 ];
  Alcotest.(check (array int)) "counts" [| 2; 1; 1; 0; 1 |]
    (Stats.Histogram.bucket_counts h);
  Alcotest.(check int) "total" 5 (Stats.Histogram.count h)

let test_histogram_outliers () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:2 in
  Stats.Histogram.add h (-5.);
  Stats.Histogram.add h 50.;
  Alcotest.(check (array int)) "clamped" [| 1; 1 |] (Stats.Histogram.bucket_counts h)

let test_histogram_quantile () =
  let h = Stats.Histogram.create ~lo:0. ~hi:100. ~buckets:10 in
  for i = 0 to 99 do
    Stats.Histogram.add h (float_of_int i)
  done;
  let median = Stats.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median near 50" true (Float.abs (median -. 50.) <= 10.)

let test_histogram_bounds () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  Alcotest.(check (pair approx approx)) "bucket 1" (2.5, 5.)
    (Stats.Histogram.bucket_bounds h 1)

(* Properties *)

let qcheck_welford_matches_naive =
  QCheck.Test.make ~name:"welford matches direct mean/variance" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 60) (float_range (-100.) 100.))
    (fun xs ->
      let w = Stats.Welford.create () in
      List.iter (Stats.Welford.add w) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
      in
      Float.abs (Stats.Welford.mean w -. mean) < 1e-6
      && Float.abs (Stats.Welford.variance w -. var) < 1e-5)

let qcheck_timed_average_bounded =
  QCheck.Test.make ~name:"timed average lies within observed values" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range 0. 100.))
    (fun values ->
      let t = Stats.Timed_average.create ~start:0. ~value:(List.hd values) in
      List.iteri
        (fun i v -> Stats.Timed_average.update t ~time:(float_of_int (i + 1)) ~value:v)
        values;
      let upto = float_of_int (List.length values + 1) in
      let avg = Stats.Timed_average.average t ~upto in
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      avg >= lo -. 1e-9 && avg <= hi +. 1e-9)

let qcheck_event_queue_sorts =
  QCheck.Test.make ~name:"event queue pops in sorted order" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:t ())) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      drain [] = List.sort compare times)

let () =
  Alcotest.run "sim"
    [
      ( "event-queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_time_order;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_on_ties;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "cancel after fire" `Quick test_queue_cancel_after_fire;
          Alcotest.test_case "peek" `Quick test_queue_peek;
          Alcotest.test_case "non-finite time" `Quick test_queue_non_finite_time;
          Alcotest.test_case "1000 random events" `Quick test_queue_many_random;
          Alcotest.test_case "footprint bounded" `Quick test_queue_footprint_bounded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "fires at boundaries before dispatch" `Quick
            test_engine_heartbeat_boundaries;
          Alcotest.test_case "deterministic cadence" `Quick
            test_engine_heartbeat_deterministic;
          Alcotest.test_case "boundaries fire up to until" `Quick
            test_engine_heartbeat_respects_until;
          Alcotest.test_case "validates intervals" `Quick
            test_engine_heartbeat_validates;
          Alcotest.test_case "wall heartbeat fires on polls" `Quick
            test_engine_wall_heartbeat_fires;
        ] );
      ( "welford",
        [
          Alcotest.test_case "known values" `Quick test_welford_known;
          Alcotest.test_case "empty" `Quick test_welford_empty;
          Alcotest.test_case "confidence interval" `Quick test_welford_ci;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ( "timed-average",
        [
          Alcotest.test_case "piecewise" `Quick test_timed_average_piecewise;
          Alcotest.test_case "instant double update" `Quick
            test_timed_average_instant_double_update;
          Alcotest.test_case "empty window" `Quick test_timed_average_empty_window;
          Alcotest.test_case "monotonicity" `Quick test_timed_average_monotonicity_check;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "outliers" `Quick test_histogram_outliers;
          Alcotest.test_case "quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_welford_matches_naive;
            qcheck_timed_average_bounded;
            qcheck_event_queue_sorts;
          ] );
    ]
