(* Command-line driver for the drqos library.

     drqos_cli run   — run a full scenario (simulate, estimate, solve)
     drqos_cli sweep — sweep offered load (and failure rate) in parallel
     drqos_cli topo  — generate a topology and print its statistics
     drqos_cli chain — solve a synthetic instance of the paper's chain

   Every command is deterministic in its --seed — including sweep,
   whatever --jobs is. *)

open Cmdliner

(* --- shared argument definitions --- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let nodes_arg =
  Arg.(value & opt int 100 & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let topology_arg =
  Arg.(
    value
    & opt (enum [ ("waxman", `Waxman); ("transit-stub", `Transit_stub) ]) `Waxman
    & info [ "topology" ] ~docv:"KIND"
        ~doc:"Topology generator: $(b,waxman) (the paper's Random network, \
              calibrated to its 354-link instance at 100 nodes) or \
              $(b,transit-stub) (the Tier network).")

let capacity_arg =
  Arg.(
    value & opt int 10_000
    & info [ "capacity" ] ~docv:"KBPS" ~doc:"Per-link capacity in Kbps.")

let policy_conv =
  let parse s =
    match Policy.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, Policy.pp)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured event trace (admissions, rejections, elastic \
           retreats/upgrades, failures, backup activations, solver calls) to \
           $(docv) as JSON Lines; $(b,-) pretty-prints to stdout instead.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a metrics manifest (counters, gauges, phase timers, solver \
           timings, run metadata) to $(docv) as JSON.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Attach the span profiler: hierarchical engine / admission / \
           water-filling spans land in the trace (as $(b,span_begin) / \
           $(b,span_end) events, wall time and GC words included) and the \
           metrics manifest gains their aggregates.  Profiled traces carry \
           wall-clock values and are not byte-reproducible; analyse them with \
           $(b,drqos_cli analyze).")

(* Build the observability context the run-like commands share: a live
   tracer when --trace is given, a live registry when --metrics is, a
   span profiler under --profile, and the disabled singletons otherwise.
   Installed as the process default (with an at_exit flush) so solver
   internals (Linsolve, Ctmc) report too and an abnormal exit cannot
   lose buffered trace output. *)
let open_out_or_exit path =
  try open_out path
  with Sys_error msg ->
    Printf.eprintf "drqos_cli: cannot open output file: %s\n" msg;
    exit 1

let make_obs ?(profile = false) ?heavy ?flight ~trace ~metrics () =
  (* Open (or validate) every output file before a single sink exists:
     [open_out_or_exit] calls [exit 1], and once [Obs.install] has run
     an exit triggers the at_exit trace flush — which must never fire
     against a context whose other outputs failed to open.  Opening
     first also keeps a failed invocation from leaving a freshly
     truncated trace file behind (see test_cli). *)
  let trace_oc =
    match trace with
    | None | Some "-" -> None
    | Some path -> Some (open_out_or_exit path)
  in
  (match metrics with
  | None -> ()
  | Some path ->
    (* Validate writability now, not after a long run. *)
    close_out (open_out_or_exit path));
  let tracer =
    match (trace, trace_oc) with
    | Some "-", _ -> Trace.create (Trace.console_sink ())
    | _, Some oc -> Trace.create (Trace.jsonl_sink oc)
    | _, None -> Trace.disabled
  in
  let registry =
    match metrics with None -> Metrics.disabled | Some _ -> Metrics.create ()
  in
  let spans = if profile then Span.create () else Span.disabled in
  let obs = Obs.create ~metrics:registry ~trace:tracer ~spans ?heavy ?flight () in
  Obs.install obs;
  obs

let write_metrics_manifest obs ~path ~meta =
  let spans =
    if Obs.profiling obs then [ ("spans", Span.to_json (Obs.spans obs)) ] else []
  in
  let doc = Jsonx.Obj (meta @ [ ("metrics", Obs.metrics_json obs) ] @ spans) in
  let oc = open_out_or_exit path in
  Jsonx.output oc doc;
  output_char oc '\n';
  close_out oc

let scenario_topology nodes = function
  | `Waxman -> Scenario.Waxman (Waxman.paper_spec ~nodes)
  | `Transit_stub ->
    if nodes = 100 then Scenario.Transit_stub Transit_stub.paper_spec
    else
      (* Scale the stub population to approximate the requested size. *)
      let stub_size = max 1 ((nodes - 4) / 12) in
      Scenario.Transit_stub
        (Transit_stub.spec ~transit_domains:1 ~transit_size:4
           ~stubs_per_transit_node:3 ~stub_size ())

(* --- run --- *)

let run_cmd =
  let offered =
    Arg.(
      value & opt int 3000
      & info [ "offered" ] ~docv:"N" ~doc:"DR-connection set-ups attempted.")
  in
  let lambda =
    Arg.(value & opt float 0.001 & info [ "lambda" ] ~doc:"Arrival rate.")
  in
  let mu = Arg.(value & opt float 0.001 & info [ "mu" ] ~doc:"Termination rate.") in
  let gamma =
    Arg.(value & opt float 0. & info [ "gamma" ] ~doc:"Link failure rate.")
  in
  let increment =
    Arg.(
      value & opt int 50
      & info [ "increment" ] ~docv:"KBPS"
          ~doc:"Elastic increment (50 = 9-state chain, 100 = 5-state).")
  in
  let policy =
    Arg.(
      value & opt policy_conv Policy.equal_share
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Adaptation policy: equal-share, proportional or max-utility.")
  in
  let churn =
    Arg.(value & opt int 2000 & info [ "churn" ] ~doc:"Measured churn events.")
  in
  let warmup =
    Arg.(value & opt int 400 & info [ "warmup" ] ~doc:"Warmup churn events.")
  in
  let no_multiplexing =
    Arg.(
      value & flag
      & info [ "no-multiplexing" ] ~doc:"Dedicate backup reservations (ablation).")
  in
  let no_backups =
    Arg.(
      value & flag
      & info [ "no-backups" ] ~doc:"Disable backup channels entirely (baseline).")
  in
  let heartbeat =
    Arg.(
      value & opt (some string) None
      & info [ "heartbeat" ] ~docv:"FILE"
          ~doc:
            "Write periodic telemetry snapshots (JSONL) to $(docv); feed it to \
             $(b,drqos_cli top).")
  in
  let heartbeat_every =
    Arg.(
      value & opt float 5000.
      & info [ "heartbeat-every" ] ~docv:"T"
          ~doc:"Simulation-time interval between snapshots.")
  in
  let heartbeat_wall =
    Arg.(
      value & opt (some float) None
      & info [ "heartbeat-wall" ] ~docv:"S"
          ~doc:
            "Also emit wall-clock heartbeats every $(docv) seconds (progress / \
             GC / stall telemetry; non-deterministic lines).")
  in
  let flight_dump =
    Arg.(
      value & opt string "drqos.flight.jsonl"
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Where the crash flight recorder dumps the last trace events if \
             the run dies.")
  in
  let run seed nodes topo capacity offered lambda mu gamma increment policy churn
      warmup no_multiplexing no_backups trace metrics profile heartbeat
      heartbeat_every heartbeat_wall flight_dump =
    let cfg =
      {
        Scenario.default with
        Scenario.topology = scenario_topology nodes topo;
        capacity;
        multiplexing = not no_multiplexing;
        with_backups = not no_backups;
        require_backup = not no_backups;
        qos = Qos.paper_spec ~increment;
        policy;
        offered;
        lambda;
        mu;
        gamma;
        churn_events = churn;
        warmup_events = warmup;
        seed;
      }
    in
    (* Heavy-hitter sketches only pay for themselves when something will
       read them — the snapshot stream's hottest-links field. *)
    let heavy = if heartbeat <> None then Heavy.create () else Heavy.disabled in
    (* The heartbeat sink opens before [make_obs] installs the trace and
       metrics sinks: a bad --heartbeat path must exit before any other
       output file has been created (regression covered in test_cli). *)
    let hb_oc = Option.map open_out_or_exit heartbeat in
    let obs =
      make_obs ~profile ~trace ~metrics ~heavy
        ~flight:(Flight.create ~capacity:2048 ()) ()
    in
    Obs.set_flight_dump obs flight_dump;
    let snapshot =
      Option.map
        (fun oc ->
          Snapshot.create ~sim_every:heartbeat_every ?wall_every:heartbeat_wall
            ~sink:(fun line ->
              output_string oc line;
              output_char oc '\n')
            ())
        hb_oc
    in
    (* The protect (plus the at_exit hook in [make_obs]) flushes the
       trace sink — and dumps the flight recorder — even when the run
       raises mid-way. *)
    Fun.protect
      ~finally:(fun () ->
        (match Obs.dump_flight obs with
        | Some path -> Format.eprintf "flight recorder dumped to %s@." path
        | None -> ());
        Option.iter close_out hb_oc;
        Obs.close obs)
    @@ fun () ->
    let t0 = Clock.now () in
    let r = Scenario.run ~obs ?snapshot cfg in
    Obs.cancel_flight_dump obs;
    let wall_s = Clock.elapsed_since t0 in
    Format.printf "%a@." Scenario.pp_result r;
    Format.printf "level distribution (time-weighted):@.";
    Array.iteri
      (fun i p ->
        Format.printf "  %3d Kbps: %5.1f%%@."
          (Qos.bandwidth_of_level cfg.Scenario.qos i)
          (100. *. p))
      r.Scenario.channel_bandwidth_dist;
    Option.iter
      (fun path ->
        write_metrics_manifest obs ~path
          ~meta:
            [
              ("command", Jsonx.String "run");
              ("seed", Jsonx.Int seed);
              ("nodes", Jsonx.Int nodes);
              ("offered", Jsonx.Int offered);
              ("churn_events", Jsonx.Int churn);
              ("warmup_events", Jsonx.Int warmup);
              ("wall_s", Jsonx.Float wall_s);
              ("estimator", Estimator.to_json r.Scenario.estimator);
            ];
        Format.printf "metrics written to %s@." path)
      metrics;
    Option.iter
      (fun path ->
        Obs.close obs;
        if path <> "-" then Format.printf "trace written to %s@." path)
      trace;
    Option.iter
      (fun path ->
        let n = match snapshot with Some s -> Snapshot.emitted s | None -> 0 in
        Format.printf "%d telemetry snapshots written to %s@." n path)
      heartbeat
  in
  let term =
    Term.(
      const run $ seed_arg $ nodes_arg $ topology_arg $ capacity_arg $ offered
      $ lambda $ mu $ gamma $ increment $ policy $ churn $ warmup $ no_multiplexing
      $ no_backups $ trace_arg $ metrics_arg $ profile_arg $ heartbeat
      $ heartbeat_every $ heartbeat_wall $ flight_dump)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a full experiment: load, churn, estimate parameters, solve the chain.")
    term

(* --- sweep --- *)

let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then begin
      Printf.eprintf "drqos_cli: %s exists and is not a directory\n" dir;
      exit 1
    end
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let sweep_cmd =
  let offered_from =
    Arg.(
      value & opt int 500
      & info [ "offered-from" ] ~docv:"N" ~doc:"First offered-load point.")
  in
  let offered_to =
    Arg.(
      value & opt int 5000
      & info [ "offered-to" ] ~docv:"N" ~doc:"Last offered-load point (inclusive).")
  in
  let offered_step =
    Arg.(
      value & opt int 500
      & info [ "offered-step" ] ~docv:"N" ~doc:"Offered-load stride.")
  in
  let gammas =
    Arg.(
      value & opt_all float []
      & info [ "gamma" ] ~docv:"RATE"
          ~doc:
            "Link failure rate; repeatable — the sweep runs the full offered \
             range at every given rate.  Default: a single failure-free sweep.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Sweep.recommended_jobs ())
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains evaluating sweep points in parallel.  Results are \
             byte-identical whatever $(docv) is (each point carries its own \
             seed; worker metrics merge at join).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Also write the sweep as $(docv)/sweep.dat (TSV, gnuplot/pandas \
             ready) and $(docv)/sweep.metrics.json (created recursively).")
  in
  let lambda =
    Arg.(value & opt float 0.001 & info [ "lambda" ] ~doc:"Arrival rate.")
  in
  let mu = Arg.(value & opt float 0.001 & info [ "mu" ] ~doc:"Termination rate.") in
  let increment =
    Arg.(
      value & opt int 50
      & info [ "increment" ] ~docv:"KBPS"
          ~doc:"Elastic increment (50 = 9-state chain, 100 = 5-state).")
  in
  let policy =
    Arg.(
      value & opt policy_conv Policy.equal_share
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Adaptation policy: equal-share, proportional or max-utility.")
  in
  let churn =
    Arg.(value & opt int 2000 & info [ "churn" ] ~doc:"Measured churn events.")
  in
  let warmup =
    Arg.(value & opt int 400 & info [ "warmup" ] ~doc:"Warmup churn events.")
  in
  let run seed nodes topo capacity offered_from offered_to offered_step gammas jobs
      out lambda mu increment policy churn warmup =
    if offered_step < 1 then begin
      Printf.eprintf "drqos_cli: --offered-step must be >= 1\n";
      exit 2
    end;
    if offered_from < 0 || offered_to < offered_from then begin
      Printf.eprintf "drqos_cli: need 0 <= --offered-from <= --offered-to\n";
      exit 2
    end;
    if jobs < 1 then begin
      Printf.eprintf "drqos_cli: --jobs must be >= 1\n";
      exit 2
    end;
    let gammas = match gammas with [] -> [ 0. ] | gs -> gs in
    let offereds =
      let rec up acc o = if o > offered_to then List.rev acc else up (o :: acc) (o + offered_step) in
      up [] offered_from
    in
    let grid =
      List.concat_map
        (fun gamma -> List.map (fun offered -> (gamma, offered)) offereds)
        gammas
    in
    let point (gamma, offered) =
      {
        Scenario.default with
        Scenario.topology = scenario_topology nodes topo;
        capacity;
        qos = Qos.paper_spec ~increment;
        policy;
        offered;
        lambda;
        mu;
        gamma;
        churn_events = churn;
        warmup_events = warmup;
        seed;
      }
    in
    let obs = Obs.create ~metrics:(Metrics.create ()) () in
    Obs.set_default obs;
    let t0 = Clock.now () in
    let results =
      Sweep.map ~jobs ~obs (fun obs cfg -> Scenario.run ~obs cfg) (List.map point grid)
    in
    let wall_s = Clock.elapsed_since t0 in
    let header =
      [ "gamma"; "offered"; "carried"; "sim Kbps"; "markov Kbps"; "ideal Kbps";
        "P_f"; "P_s" ]
    in
    let rows =
      List.map2
        (fun (gamma, offered) r ->
          [
            Printf.sprintf "%g" gamma;
            string_of_int offered;
            string_of_int r.Scenario.carried_initial;
            Printf.sprintf "%.1f" r.Scenario.sim_avg_bandwidth;
            Printf.sprintf "%.1f" r.Scenario.model_avg_bandwidth;
            Printf.sprintf "%.1f" r.Scenario.ideal_avg_bandwidth;
            Printf.sprintf "%.3f" (Estimator.p_f r.Scenario.estimator);
            Printf.sprintf "%.3f" (Estimator.p_s r.Scenario.estimator);
          ])
        grid results
    in
    let print_tsv oc =
      Printf.fprintf oc "# %s\n" (String.concat "\t" header);
      List.iter (fun row -> Printf.fprintf oc "%s\n" (String.concat "\t" row)) rows
    in
    print_tsv stdout;
    Printf.eprintf "sweep: %d points in %.1fs (%d jobs)\n" (List.length grid) wall_s
      jobs;
    Option.iter
      (fun dir ->
        mkdir_p dir;
        let dat = Filename.concat dir "sweep.dat" in
        let oc = open_out dat in
        print_tsv oc;
        close_out oc;
        let manifest = Filename.concat dir "sweep.metrics.json" in
        write_metrics_manifest obs ~path:manifest
          ~meta:
            [
              ("command", Jsonx.String "sweep");
              ("seed", Jsonx.Int seed);
              ("nodes", Jsonx.Int nodes);
              ("points", Jsonx.Int (List.length grid));
              ("jobs", Jsonx.Int jobs);
              ("churn_events", Jsonx.Int churn);
              ("warmup_events", Jsonx.Int warmup);
              ("wall_s", Jsonx.Float wall_s);
            ];
        Printf.eprintf "sweep data written to %s, metrics to %s\n" dat manifest)
      out
  in
  let term =
    Term.(
      const run $ seed_arg $ nodes_arg $ topology_arg $ capacity_arg $ offered_from
      $ offered_to $ offered_step $ gammas $ jobs $ out $ lambda $ mu $ increment
      $ policy $ churn $ warmup)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep offered load (and optionally failure rate) over a range of \
          scenario points, evaluated in parallel on a deterministic domain \
          pool; emits the table as TSV on stdout and optionally as \
          sweep.dat / sweep.metrics.json under --out.")
    term

(* --- topo --- *)

let topo_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit the graph in DOT format.")
  in
  let run seed nodes topo dot =
    let rng = Prng.create seed in
    let g =
      match scenario_topology nodes topo with
      | Scenario.Waxman spec -> Waxman.generate rng spec
      | Scenario.Transit_stub spec -> (Transit_stub.generate rng spec).Transit_stub.graph
      | Scenario.Fixed g -> g
    in
    if dot then begin
      print_endline "graph drqos {";
      Graph.iter_edges (fun _ u v -> Printf.printf "  n%d -- n%d;\n" u v) g;
      print_endline "}"
    end
    else begin
      Format.printf "%a@." Graph.pp g;
      Format.printf "links (unidirectional): %d@." (2 * Graph.edge_count g);
      Format.printf "diameter: %d hops@." (Paths.diameter g);
      Format.printf "average inter-node distance: %.2f hops@." (Paths.average_hops g);
      Format.printf "connected: %b@." (Graph.is_connected g)
    end
  in
  let term = Term.(const run $ seed_arg $ nodes_arg $ topology_arg $ dot) in
  Cmd.v (Cmd.info "topo" ~doc:"Generate a topology and print statistics (or DOT).") term

(* --- chain --- *)

let chain_cmd =
  let p_f = Arg.(value & opt float 0.04 & info [ "pf" ] ~doc:"P_f (direct chaining).") in
  let p_s = Arg.(value & opt float 0.5 & info [ "ps" ] ~doc:"P_s (indirect chaining).") in
  let lambda = Arg.(value & opt float 0.001 & info [ "lambda" ] ~doc:"Arrival rate.") in
  let mu = Arg.(value & opt float 0.001 & info [ "mu" ] ~doc:"Termination rate.") in
  let gamma = Arg.(value & opt float 0. & info [ "gamma" ] ~doc:"Failure rate.") in
  let increment =
    Arg.(value & opt int 50 & info [ "increment" ] ~doc:"Elastic increment in Kbps.")
  in
  let run p_f p_s lambda mu gamma increment trace metrics =
    let obs = make_obs ~trace ~metrics () in
    Fun.protect ~finally:(fun () -> Obs.close obs) @@ fun () ->
    let qos = Qos.paper_spec ~increment in
    let n = Qos.levels qos in
    let p = Model.synthetic ~lambda ~mu ~gamma ~p_f ~p_s ~levels:n in
    let pi = Ctmc.stationary (Model.build_regularized p) in
    Format.printf "stationary distribution of the %d-state chain:@." n;
    Array.iteri
      (fun i x ->
        Format.printf "  S%d (%3d Kbps): %6.3f@." i (Qos.bandwidth_of_level qos i) x)
      pi;
    Format.printf "average bandwidth: %.1f Kbps@."
      (Model.average_bandwidth_regularized p ~qos);
    Format.printf "sensitivities (d avg / d knob):@.";
    List.iter
      (fun (label, knob) ->
        Format.printf "  %-7s %12.1f@." label (Model.sensitivity p ~qos knob))
      [
        ("lambda", `Lambda); ("mu", `Mu); ("gamma", `Gamma); ("P_f", `P_f); ("P_s", `P_s);
      ];
    Option.iter
      (fun path ->
        write_metrics_manifest obs ~path
          ~meta:
            [
              ("command", Jsonx.String "chain");
              ("states", Jsonx.Int n);
              ("increment", Jsonx.Int increment);
            ];
        Format.printf "metrics written to %s@." path)
      metrics
  in
  let term =
    Term.(
      const run $ p_f $ p_s $ lambda $ mu $ gamma $ increment $ trace_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "chain"
       ~doc:"Solve a synthetic instance of the paper's Markov chain from CLI parameters.")
    term

(* --- analyze --- *)

let analyze_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"JSONL trace file written by $(b,--trace).")
  in
  let audit_flag =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Compare the empirical level residency against the analytic \
             stationary distribution of the paper's chain solved for the \
             trace's own measured rates (overridable below); reports the \
             max (L_inf) and total (L1) per-level error.")
  in
  let levels =
    Arg.(
      value
      & opt (some int) None
      & info [ "levels" ] ~docv:"N"
          ~doc:"Chain size for the audit (default: highest level observed + 1).")
  in
  let over name doc =
    Arg.(value & opt (some float) None & info [ name ] ~docv:"X" ~doc)
  in
  let lambda = over "lambda" "Override the measured arrival rate in the audit." in
  let mu = over "mu" "Override the measured termination rate in the audit." in
  let gamma = over "gamma" "Override the measured failure rate in the audit." in
  let p_f = over "pf" "Override the measured P_f in the audit." in
  let p_s = over "ps" "Override the measured P_s in the audit." in
  let window =
    Arg.(
      value & opt float 10.
      & info [ "window" ] ~docv:"T"
          ~doc:"Causality window after each link failure (simulation time units).")
  in
  let perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Also export the trace as Chrome/Perfetto trace-event JSON \
             (open in ui.perfetto.dev or chrome://tracing).")
  in
  let top_spans =
    Arg.(
      value & opt int 5
      & info [ "top-spans" ] ~docv:"N"
          ~doc:"Show the N hottest profiler spans by self time (0 = none).")
  in
  let run trace_path audit_flag levels lambda mu gamma p_f p_s window perfetto
      top_n =
    let a =
      try Analysis.of_file trace_path with
      | Sys_error msg ->
        Printf.eprintf "drqos_cli: %s\n" msg;
        exit 1
      | Jsonx.Line_error { line; message } ->
        Printf.eprintf "drqos_cli: %s:%d: %s\n" trace_path line message;
        exit 1
    in
    Format.printf "trace: %d events, horizon %g, %d channels@."
      (Analysis.event_count a) (Analysis.horizon a)
      (List.length (Analysis.channels a));
    Format.printf "event counts:@.";
    List.iter
      (fun (k, n) -> Format.printf "  %-16s %8d@." k n)
      (Analysis.event_counts a);
    (match Analysis.rejections a with
    | [] -> ()
    | rs ->
      Format.printf "rejections:@.";
      List.iter (fun (k, n) -> Format.printf "  %-16s %8d@." k n) rs);
    let resid = Analysis.residency ?levels a in
    if Array.length resid > 0 then begin
      Format.printf "level residency (fraction of channel-time):@.";
      Array.iteri (fun i p -> Format.printf "  S%-2d %8.4f@." i p) resid
    end;
    let r = Analysis.estimate_rates a in
    Format.printf
      "estimated rates: lambda=%g mu=%g gamma=%g P_f=%.4f P_s=%.4f (%d \
       arrivals, %d chain samples)@."
      r.Analysis.lambda r.Analysis.mu r.Analysis.gamma r.Analysis.p_f
      r.Analysis.p_s r.Analysis.arrivals r.Analysis.chain_samples;
    (match Analysis.failure_windows ~window a with
    | [] -> ()
    | ws ->
      let sum f = List.fold_left (fun acc w -> acc + f w) 0 ws in
      Format.printf
        "failure response (window %g): %d failures, %d retreats, %d upgrades, \
         %d activations, %d drops@."
        window (List.length ws)
        (sum (fun w -> w.Analysis.retreats))
        (sum (fun w -> w.Analysis.upgrades))
        (sum (fun w -> w.Analysis.activations))
        (sum (fun w -> w.Analysis.drops));
      let dts = List.filter_map (fun w -> w.Analysis.first_activation_dt) ws in
      match dts with
      | [] -> ()
      | _ ->
        let mean = List.fold_left ( +. ) 0. dts /. float_of_int (List.length dts) in
        Format.printf "  first backup activation: mean dt %g over %d failures@."
          mean (List.length dts));
    if audit_flag then begin
      let au = Analysis.audit ?levels ?lambda ?mu ?gamma ?p_f ?p_s a in
      let ru = au.Analysis.rates_used in
      Format.printf
        "audit vs %d-state chain (lambda=%g mu=%g gamma=%g P_f=%.4f P_s=%.4f):@."
        au.Analysis.levels ru.Analysis.lambda ru.Analysis.mu ru.Analysis.gamma
        ru.Analysis.p_f ru.Analysis.p_s;
      Format.printf "  level  empirical  analytic@.";
      Array.iteri
        (fun i e ->
          Format.printf "  S%-4d %9.4f %9.4f@." i e au.Analysis.analytic.(i))
        au.Analysis.empirical;
      Format.printf "  L_inf = %.4f, L1 = %.4f@." au.Analysis.linf au.Analysis.l1
    end;
    (if top_n > 0 then
       match Analysis.top_spans ~limit:top_n a with
       | [] -> ()
       | spans ->
         Format.printf "top spans (by self time):@.";
         Format.printf "  %-24s %8s %12s %12s %14s %14s@." "name" "count"
           "total_s" "self_s" "minor_words" "major_words";
         List.iter
           (fun s ->
             Format.printf "  %-24s %8d %12.6f %12.6f %14.0f %14.0f@."
               s.Analysis.span_name s.Analysis.span_count s.Analysis.span_total_s
               s.Analysis.span_self_s s.Analysis.span_minor_words
               s.Analysis.span_major_words)
           spans;
         Format.printf "  max span depth: %d@." (Analysis.max_span_depth a));
    Option.iter
      (fun path ->
        let oc = open_out_or_exit path in
        Jsonx.output oc (Analysis.to_perfetto a);
        output_char oc '\n';
        close_out oc;
        Format.printf "perfetto trace written to %s@." path)
      perfetto
  in
  let term =
    Term.(
      const run $ trace_file $ audit_flag $ levels $ lambda $ mu $ gamma $ p_f
      $ p_s $ window $ perfetto $ top_spans)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Replay a recorded JSONL trace into derived views: per-level \
          residency, rejection breakdown, measured rates, failure-response \
          windows, an empirical-vs-analytic chain audit, profiler span \
          aggregates, and a Perfetto export.  Output is a pure function of \
          the trace bytes.")
    term

(* --- perfdiff --- *)

let perfdiff_cmd =
  let base_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASE" ~doc:"Baseline BENCH_*.json perf record.")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate BENCH_*.json perf record.")
  in
  let max_regress =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Exit non-zero when NEW's wall time exceeds BASE's by more than \
             $(docv) percent; without it the comparison is informational.")
  in
  let run base_path new_path max_regress =
    let load path =
      let text =
        try In_channel.with_open_text path In_channel.input_all
        with Sys_error msg ->
          Printf.eprintf "drqos_cli: %s\n" msg;
          exit 1
      in
      try Jsonx.of_string (String.trim text)
      with Jsonx.Parse_error msg ->
        Printf.eprintf "drqos_cli: %s: %s\n" path msg;
        exit 1
    in
    let b = load base_path and n = load new_path in
    let field doc key conv what path =
      match Option.bind (Jsonx.member key doc) conv with
      | Some v -> v
      | None ->
        Printf.eprintf "drqos_cli: %s: missing or ill-typed %s\n" path what;
        exit 1
    in
    let wb = field b "wall_s" Jsonx.to_float "wall_s" base_path in
    let wn = field n "wall_s" Jsonx.to_float "wall_s" new_path in
    let pct from_v to_v = if from_v > 0. then 100. *. (to_v -. from_v) /. from_v else 0. in
    Printf.printf "wall_s: %.3f -> %.3f (%+.1f%%)\n" wb wn (pct wb wn);
    let gc_major doc =
      Option.bind (Jsonx.member "gc" doc) (fun g ->
          Option.bind (Jsonx.member "major_words" g) Jsonx.to_float)
    in
    (match (gc_major b, gc_major n) with
    | Some gb, Some gn ->
      Printf.printf "gc.major_words: %.0f -> %.0f (%+.1f%%)\n" gb gn (pct gb gn)
    | _ -> ());
    (* Per-span self-time comparison over the union of span names. *)
    let spans doc =
      match Jsonx.member "spans" doc with
      | Some (Jsonx.List l) ->
        List.filter_map
          (fun s ->
            match
              ( Option.bind (Jsonx.member "name" s) Jsonx.to_str,
                Option.bind (Jsonx.member "self_s" s) Jsonx.to_float )
            with
            | Some name, Some self -> Some (name, self)
            | _ -> None)
          l
      | _ -> []
    in
    let sb = spans b and sn = spans n in
    let names =
      List.sort_uniq compare (List.map fst sb @ List.map fst sn)
    in
    if names <> [] then begin
      Printf.printf "%-24s %12s %12s %9s\n" "span (self_s)" "base" "new" "delta";
      List.iter
        (fun name ->
          match (List.assoc_opt name sb, List.assoc_opt name sn) with
          | Some a, Some c ->
            Printf.printf "%-24s %12.6f %12.6f %+8.1f%%\n" name a c (pct a c)
          | Some a, None -> Printf.printf "%-24s %12.6f %12s %9s\n" name a "-" "-"
          | None, Some c -> Printf.printf "%-24s %12s %12.6f %9s\n" name "-" c "-"
          | None, None -> ())
        names
    end;
    (* Per-stage p99 comparison (serve records): informational — the
       tracing-on overhead budget gates on wall time, the stage deltas
       say *where* a regression lives. *)
    let stage_p99s doc =
      match Jsonx.member "stage_p99_s" doc with
      | Some (Jsonx.Obj fields) ->
        List.filter_map
          (fun (name, v) -> Option.map (fun f -> (name, f)) (Jsonx.to_float v))
          fields
      | _ -> []
    in
    let pb = stage_p99s b and pn = stage_p99s n in
    let stage_names =
      List.sort_uniq compare (List.map fst pb @ List.map fst pn)
    in
    if stage_names <> [] then begin
      Printf.printf "%-24s %12s %12s %9s\n" "stage (p99_s)" "base" "new" "delta";
      List.iter
        (fun name ->
          match (List.assoc_opt name pb, List.assoc_opt name pn) with
          | Some a, Some c ->
            Printf.printf "%-24s %12.6f %12.6f %+8.1f%%\n" name a c (pct a c)
          | Some a, None -> Printf.printf "%-24s %12.6f %12s %9s\n" name a "-" "-"
          | None, Some c -> Printf.printf "%-24s %12s %12.6f %9s\n" name "-" c "-"
          | None, None -> ())
        stage_names
    end;
    match max_regress with
    | Some lim when wn > wb *. (1. +. (lim /. 100.)) ->
      Printf.eprintf "perfdiff: wall time regressed %.1f%% (limit %.1f%%)\n"
        (pct wb wn) lim;
      exit 1
    | _ -> ()
  in
  let term = Term.(const run $ base_file $ new_file $ max_regress) in
  Cmd.v
    (Cmd.info "perfdiff"
       ~doc:
         "Compare two BENCH_*.json perf records (wall time, GC, per-span self \
          times); with --max-regress, gate on the wall-time delta.")
    term

(* --- fuzz --- *)

let fuzz_cmd =
  let ops =
    Arg.(
      value & opt int 10_000
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per topology family.")
  in
  let families =
    let fam =
      Arg.enum
        (List.map (fun f -> (Fuzz.family_name f, f)) Fuzz.all_families)
    in
    Arg.(
      value & opt_all fam []
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:"Topology family to fuzz (repeatable): $(b,waxman), $(b,torus) \
                or $(b,transit-stub).  Default: all three.")
  in
  let fuzz_nodes =
    Arg.(value & opt int 20 & info [ "nodes" ] ~docv:"N" ~doc:"Approximate node count.")
  in
  let capacity =
    Arg.(value & opt int 1200 & info [ "capacity" ] ~docv:"KBPS" ~doc:"Link capacity.")
  in
  let backups =
    Arg.(value & opt int 2 & info [ "backups" ] ~docv:"K" ~doc:"Backups per connection.")
  in
  let restore =
    Arg.(value & flag & info [ "restore" ] ~doc:"Reactive-restoration baseline.")
  in
  let no_mux =
    Arg.(value & flag & info [ "no-multiplexing" ] ~doc:"Dedicated (unshared) backup pools.")
  in
  let policy =
    let pol =
      Arg.enum
        (List.map (fun p -> (Format.asprintf "%a" Policy.pp p, p)) Policy.all)
    in
    Arg.(
      value & opt pol Policy.equal_share
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Redistribution policy.")
  in
  let deep_every =
    Arg.(
      value & opt int 20
      & info [ "deep-every" ] ~docv:"N"
          ~doc:"Run the single-failure-safety check every N ops (0 = never).")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Print the raw failing prefix unshrunk.")
  in
  let replay_file =
    Arg.(
      value & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a reproducer script instead of generating operations.")
  in
  let pp_stats fmt (s : Fuzz.stats) =
    Format.fprintf fmt
      "%d ops: %d admitted, %d rejected, %d terminated, %d qos changes (%d \
       refused), %d edge failures, %d repairs, %d activations, %d backup \
       losses, %d drops, %d restores; %d live"
      s.Fuzz.ops_run s.admitted s.rejected s.terminated s.qos_changed
      s.qos_refused s.edge_failures s.edge_repairs s.activations
      s.backup_losses s.drops s.restores s.live
  in
  let run seed ops families nodes capacity backups restore no_mux policy
      deep_every no_shrink replay_file =
    match replay_file with
    | Some path -> (
      let text = In_channel.with_open_text path In_channel.input_all in
      match Fuzz.parse_script text with
      | Error msg ->
        Format.eprintf "cannot parse %s: %s@." path msg;
        exit 2
      | Ok (cfg, script) -> (
        let r = Fuzz.replay cfg script in
        match r.Fuzz.violation with
        | None ->
          Format.printf "replay of %s passed (%a)@." path pp_stats r.Fuzz.stats
        | Some v ->
          Format.printf "replay of %s fails at op %d (%a): %s@." path
            v.Fuzz.index Op.pp v.Fuzz.op v.Fuzz.message;
          exit 1))
    | None ->
      let families = if families = [] then Fuzz.all_families else families in
      let violations =
        List.filter_map
          (fun family ->
            let cfg =
              Fuzz.config ~nodes ~capacity ~backups ~restore
                ~multiplexing:(not no_mux) ~policy ~deep_every ~family ~seed
                ~ops ()
            in
            match Fuzz.run ~shrink:(not no_shrink) cfg with
            | Ok stats ->
              Format.printf "%-12s seed=%d ok, %a@." (Fuzz.family_name family)
                seed pp_stats stats;
              None
            | Error f ->
              Format.printf "%-12s seed=%d VIOLATION at op %d: %s@."
                (Fuzz.family_name family) seed f.Fuzz.violation.Fuzz.index
                f.Fuzz.violation.Fuzz.message;
              Format.printf "reproducer (%d ops, shrunk from %d):@.%s"
                (Array.length f.Fuzz.script) f.Fuzz.stats.Fuzz.ops_run
                (Fuzz.to_script f);
              (* Black box: the shrunk replay's last trace events,
                 timestamped with op indices into the script above. *)
              let flight_path =
                Printf.sprintf "%s-seed%d.flight.jsonl"
                  (Fuzz.family_name family) seed
              in
              let oc = open_out_or_exit flight_path in
              Flight.dump_events f.Fuzz.flight oc;
              close_out oc;
              Format.printf "flight recorder (%d events) written to %s@."
                (List.length f.Fuzz.flight) flight_path;
              Some f)
          families
      in
      if violations <> [] then exit 1
  in
  let term =
    Term.(
      const run $ seed_arg $ ops $ families $ fuzz_nodes $ capacity $ backups
      $ restore $ no_mux $ policy $ deep_every $ no_shrink $ replay_file)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the DR-connection service with random op sequences, checking \
             the full invariant suite after every operation; on violation, \
             print a shrunk replayable reproducer.")
    term

(* --- top --- *)

let top_cmd =
  let hb_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HEARTBEAT"
          ~doc:"Telemetry JSONL written by a $(b,--heartbeat) run.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:"Re-read the file and refresh the view until interrupted.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"S"
          ~doc:"Refresh period in $(b,--follow) mode (seconds).")
  in
  let stall_factor =
    Arg.(
      value & opt float 3.0
      & info [ "stall-factor" ] ~docv:"X"
          ~doc:
            "Flag a wall-clock stall when a heartbeat gap exceeds $(docv) \
             times the expected cadence (median observed gap).")
  in
  let links =
    Arg.(
      value & opt int 5
      & info [ "links" ] ~docv:"K" ~doc:"Hottest links shown.")
  in
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  let render path ~stall_factor ~links =
    let a = Analysis.of_file path in
    let snaps = Analysis.snapshots a in
    let hbs = Analysis.heartbeats a in
    Format.printf "drqos top — %s (%d snapshots, %d heartbeats)@." path
      (List.length snaps) (List.length hbs);
    (match List.rev snaps with
    | [] -> Format.printf "no snapshots yet@."
    | last :: _ ->
      Format.printf
        "sim t=%g  events=%d  live=%d (peak %d)  queue=%d (peak %d)  \
         footprint=%d@."
        last.Analysis.sn_time last.Analysis.sn_events last.Analysis.sn_live
        last.Analysis.sn_peak_live last.Analysis.sn_queue
        last.Analysis.sn_peak_queue last.Analysis.sn_footprint;
      Format.printf "live by level:";
      List.iteri (fun i n -> Format.printf " S%d:%d" i n)
        last.Analysis.sn_live_by_level;
      Format.printf "@.";
      (match Analysis.ops_series a with
      | [] -> ()
      | series ->
        let n = List.length series in
        let mean =
          List.fold_left (fun acc (_, r) -> acc +. r) 0. series /. float_of_int n
        in
        let _, last_rate = List.nth series (n - 1) in
        Format.printf "dispatch rate: %.4g ev/simt (mean %.4g over %d intervals)@."
          last_rate mean n);
      (match take links last.Analysis.sn_hot with
      | [] -> ()
      | hot ->
        Format.printf "hottest links (churn):";
        List.iter (fun (dl, n) -> Format.printf " %d:%d" dl n) hot;
        Format.printf "@.");
      (match take 6 last.Analysis.sn_counters with
      | [] -> ()
      | cs ->
        Format.printf "counter deltas:";
        List.iter (fun (name, d) -> Format.printf " %s:%+d" name d) cs;
        Format.printf "@.");
      (* Serving-plane hygiene counters: cumulative over the stream
         (sn_counters carry per-snapshot deltas). *)
      let total name =
        List.fold_left
          (fun acc s ->
            match List.assoc_opt name s.Analysis.sn_counters with
            | Some d -> acc + d
            | None -> acc)
          0 snaps
      in
      let reaped = total "serve.reaped" in
      let undecodable = total "serve.undecodable" in
      if reaped > 0 || undecodable > 0 then
        Format.printf "serve: %d connections reaped, %d undecodable lines@."
          reaped undecodable;
      if last.Analysis.sn_slo_good + last.Analysis.sn_slo_bad > 0 then
        Format.printf
          "slo: %d good / %d bad cumulative (burn rate %.4f%% this beat)@."
          last.Analysis.sn_slo_good last.Analysis.sn_slo_bad
          (100. *. last.Analysis.sn_slo_burn));
    (match List.rev hbs with
    | [] -> ()
    | last :: _ ->
      Format.printf
        "wall t=%.1fs  %.0f ops/s  gc: %.0f minor + %.0f major words/beat, \
         heap %d words@."
        last.Analysis.hb_wall_s last.Analysis.hb_ops_per_s
        last.Analysis.hb_minor_words last.Analysis.hb_major_words
        last.Analysis.hb_heap_words);
    match Analysis.stalls ~factor:stall_factor a with
    | [] -> if hbs <> [] then Format.printf "no stalls detected@."
    | stalls ->
      Format.printf "STALLS (%d):" (List.length stalls);
      List.iter
        (fun (at, gap) -> Format.printf " %.1fs gap at wall t=%.1fs;" gap at)
        stalls;
      Format.printf "@."
  in
  let run path follow interval stall_factor links =
    if stall_factor <= 0. then begin
      Format.eprintf "drqos_cli: --stall-factor must be positive@.";
      exit 2
    end;
    let render_once ~soft =
      try
        render path ~stall_factor ~links;
        true
      with
      | Sys_error msg ->
        Format.eprintf "drqos_cli: %s@." msg;
        soft
      | Jsonx.Line_error { line; message } ->
        (* In follow mode a line may be mid-write; try again next tick. *)
        Format.eprintf "drqos_cli: %s:%d: %s@." path line message;
        soft
    in
    if not follow then begin
      if not (render_once ~soft:false) then exit 1
    end
    else
      while true do
        print_string "\027[H\027[2J";
        ignore (render_once ~soft:true);
        Format.printf "%!";
        Unix.sleepf (max 0.05 interval)
      done
  in
  let term =
    Term.(const run $ hb_file $ follow $ interval $ stall_factor $ links)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Terminal view of a heartbeat telemetry stream: dispatch rate, live \
          channels by level, hottest links, GC pressure and wall-clock stall \
          detection.  With $(b,--follow), tails a run in progress.")
    term

(* --- serve / loadgen --- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to serve on (or dial, for loadgen).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port on 127.0.0.1 to serve on (or dial, for loadgen).")

let address_of socket port : Serve_server.address =
  match (socket, port) with
  | Some _, Some _ ->
    prerr_endline "drqos_cli: --socket and --port are mutually exclusive";
    exit 2
  | Some path, None -> `Unix path
  | None, Some port -> `Tcp ("127.0.0.1", port)
  | None, None ->
    prerr_endline "drqos_cli: one of --socket PATH or --port PORT is required";
    exit 2

let serve_cmd =
  let wall_every =
    Arg.(
      value & opt float 1.0
      & info [ "wall-every" ] ~docv:"SECONDS"
          ~doc:"Heartbeat cadence pushed to subscribed connections (monotonic).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:"Log accepts, disconnects and lifecycle events to stderr.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Policy.equal_share
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Bandwidth adaptation policy.")
  in
  let slo =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo" ] ~docv:"SECONDS"
          ~doc:
            "Per-request latency objective: requests whose stage sum exceeds \
             $(docv) count bad (good/bad totals and a rolling burn rate ride \
             the snapshot stream), and each miss emits a $(b,slow_request) \
             exemplar note with its full stage breakdown.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Tee the daemon's trace stream — including the per-request \
             $(b,req_begin)/$(b,req_stage)/$(b,req_end) records — to $(docv) \
             as JSONL, for $(b,drqos_cli latency).")
  in
  let slow_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-dir" ] ~docv:"DIR"
          ~doc:
            "With $(b,--slo): dump a flight-recorder ring of the events \
             preceding each of the first few SLO misses to \
             $(docv)/slow_<rid>.jsonl (directory created if missing).")
  in
  let run seed nodes topo capacity policy wall_every slo trace_file slow_dir
      socket port verbose =
    let addr = address_of socket port in
    (match slo with
    | Some s when s <= 0. ->
      prerr_endline "drqos_cli: --slo must be positive";
      exit 2
    | _ -> ());
    let rng = Prng.create seed in
    let g =
      match scenario_topology nodes topo with
      | Scenario.Waxman spec -> Waxman.generate rng spec
      | Scenario.Transit_stub spec ->
        (Transit_stub.generate rng spec).Transit_stub.graph
      | Scenario.Fixed g -> g
    in
    let net = Net_state.create ~capacity g in
    let config = Drcomm.Config.make ~policy () in
    let log = if verbose then prerr_endline else ignore in
    Printf.printf "serving %d nodes / %d edges, capacity %d Kbps\n%!"
      (Graph.node_count g) (Graph.edge_count g) capacity;
    let requests =
      Serve_server.run ~config ~wall_every ?slo ?trace_file ?slow_dir ~log addr
        net
    in
    Printf.printf "served %d requests\n" requests
  in
  let term =
    Term.(
      const run $ seed_arg $ nodes_arg $ topology_arg $ capacity_arg $ policy
      $ wall_every $ slo $ trace_file $ slow_dir $ socket_arg $ port_arg
      $ verbose)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the QoS-broker daemon: a single-threaded event loop serving the \
          DR-connection service over a Unix or TCP socket.  Clients speak \
          JSON-Lines requests (admit, teardown, chqos, fail, repair, stats, \
          snapshot, metrics), may subscribe to pushed trace events and wall \
          heartbeats, and stop the daemon with a $(b,shutdown) request.")
    term

(* The loadgen worker's view of one connection it owns. *)
module Loadgen = struct
  type worker = {
    client : Serve_client.t;
    rng : Prng.t;
    mutable own : int list;  (** channels this worker admitted and still holds. *)
    mutable own_n : int;
    mutable failed : int list;  (** edges worker 0 failed and not yet repaired. *)
    mutable errors : int;  (** unexpected error replies. *)
    mutable stale : int;  (** ops that raced a failure-drop: expected. *)
    mutable rejected : int;  (** admission rejections: expected under load. *)
    mutable trace : Reqtrace.ctx option;
        (** tracing context stamped on the next request line, when the
            replay is recording a client-side latency log. *)
  }

  let qos_palette =
    [|
      Qos.paper_spec ~increment:100;
      Qos.paper_spec ~increment:50;
      Qos.make ~utility:0.7 ~b_min:200 ~b_max:400 ~increment:50 ();
      Qos.make ~b_min:50 ~b_max:250 ~increment:50 ();
    |]

  let drop_own w ch =
    w.own <- List.filter (fun c -> c <> ch) w.own;
    w.own_n <- List.length w.own

  let pick_own w =
    match w.own with
    | [] -> None
    | l -> Some (List.nth l (Prng.int w.rng w.own_n))

  (* Every request a step issues goes through [call], so the worker's
     tracing context (when armed) stamps whichever verb the dice chose. *)
  let call w req = Serve_client.request ?trace:w.trace w.client req

  let admit w ~nodes =
    let src, dst = Prng.sample_distinct_pair w.rng nodes in
    let qos = Prng.pick w.rng qos_palette in
    match call w (Serve_proto.Admit { src; dst; qos }) with
    | Serve_proto.Admitted { channel; _ } ->
      w.own <- channel :: w.own;
      w.own_n <- w.own_n + 1
    | Serve_proto.Admit_rejected _ -> w.rejected <- w.rejected + 1
    | _ -> w.errors <- w.errors + 1

  let teardown w ch =
    drop_own w ch;
    match call w (Serve_proto.Teardown { channel = ch }) with
    | Serve_proto.Torn_down _ -> ()
    | Serve_proto.Error_reply _ ->
      (* The channel was dropped by a failure between our admit and now:
         an expected race under fail/repair injection, not a bug. *)
      w.stale <- w.stale + 1
    | _ -> w.errors <- w.errors + 1

  let chqos w ch =
    let qos = Prng.pick w.rng qos_palette in
    match call w (Serve_proto.Change_qos { channel = ch; qos }) with
    | Serve_proto.Qos_changed _ -> ()
    | Serve_proto.Error_reply _ ->
      drop_own w ch;
      w.stale <- w.stale + 1
    | _ -> w.errors <- w.errors + 1

  let fail_or_repair w ~fail_edges =
    match w.failed with
    | e :: rest ->
      (match call w (Serve_proto.Repair { edge = e }) with
      | Serve_proto.Edge_repaired _ -> w.failed <- rest
      | _ -> w.errors <- w.errors + 1);
      "repair"
    | [] ->
      let e = Prng.int w.rng fail_edges in
      (match call w (Serve_proto.Fail { edge = e }) with
      | Serve_proto.Edge_failed { recoveries; _ } ->
        w.failed <- e :: w.failed;
        (* Our own victims that did not survive leave the owned list. *)
        List.iter
          (fun r ->
            if r.Serve_proto.rw_outcome = `Dropped then
              drop_own w r.Serve_proto.rw_channel)
          recoveries
      | _ -> w.errors <- w.errors + 1);
      "fail"

  let expect_ok w resp =
    match resp with
    | Serve_proto.Error_reply _ -> w.errors <- w.errors + 1
    | _ -> ()

  (* One scheduled operation, returning the wire verb it issued (the
     client-side latency log labels each request with it).  The churn
     steers each worker's owned population toward [target] (the paper's
     steady state: arrivals balanced by terminations, live ≈ λ/μ), so
     the daemon's live set — and with it the per-operation
     water-filling cost — holds steady instead of growing without
     bound.  Read-side requests are sprinkled in; only worker 0 injects
     failures, so repair bookkeeping stays single-owner. *)
  let step ~nodes ~target ~fail_edges w _i =
    let dice = Prng.int w.rng 100 in
    if dice < 70 then begin
      if w.own_n >= target then
        match pick_own w with
        | Some ch ->
          teardown w ch;
          "teardown"
        | None ->
          admit w ~nodes;
          "admit"
      else begin
        admit w ~nodes;
        "admit"
      end
    end
    else if dice < 90 then
      match pick_own w with
      | Some ch ->
        chqos w ch;
        "chqos"
      | None ->
        admit w ~nodes;
        "admit"
    else if dice < 94 then begin
      expect_ok w (call w Serve_proto.Stats);
      "stats"
    end
    else if dice < 97 then begin
      expect_ok w (call w Serve_proto.Ping);
      "ping"
    end
    else if dice < 99 || fail_edges <= 0 then begin
      expect_ok w (call w Serve_proto.Snapshot);
      "snapshot"
    end
    else fail_or_repair w ~fail_edges
end

let loadgen_cmd =
  let requests =
    Arg.(
      value & opt int 100_000
      & info [ "requests" ] ~docv:"N" ~doc:"Operations to replay.")
  in
  let rate =
    Arg.(
      value & opt float 20_000.
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Offered load in requests per second (the open-loop schedule).")
  in
  let arrivals_arg =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty) ]) `Poisson
      & info [ "arrivals" ] ~docv:"KIND"
          ~doc:
            "Arrival process: $(b,poisson) (exponential inter-arrivals at \
             $(b,--rate)) or $(b,bursty) (on/off: 100 ms bursts at twice the \
             rate separated by 100 ms silences; same average rate).")
  in
  let jobs =
    Arg.(
      value & opt int 4
      & info [ "jobs" ] ~docv:"J" ~doc:"Worker domains (one connection each).")
  in
  let live_target =
    Arg.(
      value & opt int 400
      & info [ "live" ] ~docv:"N"
          ~doc:
            "Steady-state live-connection population the churn steers toward \
             (split across workers) — the paper's λ/μ operating point.")
  in
  let fail_edges =
    Arg.(
      value & opt int 0
      & info [ "fail-edges" ] ~docv:"K"
          ~doc:
            "Let worker 0 inject fail/repair round-trips on edge ids below \
             $(docv) (0 disables failure injection; $(docv) must not exceed \
             the daemon's edge count).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Smoke-test scale: 2000 requests at 5000 rps (CI gate).")
  in
  let out_dir =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write $(b,BENCH_serve.json) (machine-readable perf record) and \
             $(b,serve.dat) (percentile table) under $(docv).")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send a shutdown request when the replay ends.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the client side of request tracing: stamp every request \
             line with a $(b,trace) context (rid = schedule index) and write \
             one $(b,req_client) JSONL record per operation to $(docv).  Feed \
             it to $(b,drqos_cli latency) together with the daemon's \
             $(b,--trace) file to join client latency with server stages.")
  in
  let slo_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo" ] ~docv:"SECONDS"
          ~doc:
            "Client-side latency objective: count operations whose open-loop \
             latency exceeds $(docv) and report the good/bad split.")
  in
  let run seed nodes socket port requests rate arrivals jobs live_target
      fail_edges quick out_dir shutdown trace_out slo_arg =
    let addr = address_of socket port in
    let requests = if quick then 2000 else requests in
    let rate = if quick then 5000. else rate in
    if requests < 1 then begin
      prerr_endline "drqos_cli: --requests must be >= 1";
      exit 2
    end;
    if rate <= 0. then begin
      prerr_endline "drqos_cli: --rate must be > 0";
      exit 2
    end;
    (* The schedule is drawn up front, deterministically in --seed: the
       replay offers the same load whatever the daemon does. *)
    let schedule = Array.make requests 0. in
    let rng = Prng.create seed in
    (match arrivals with
    | `Poisson ->
      let t = ref 0. in
      Array.iteri
        (fun i _ ->
          t := !t +. Prng.exponential rng rate;
          schedule.(i) <- !t)
        schedule
    | `Bursty ->
      (* Draw at twice the rate, then stretch every other 100 ms window
         into silence: on/off bursts with the same average rate. *)
      let burst = 0.1 in
      let t = ref 0. in
      Array.iteri
        (fun i _ ->
          t := !t +. Prng.exponential rng (2. *. rate);
          schedule.(i) <- !t +. (Float.of_int (int_of_float (!t /. burst)) *. burst))
        schedule);
    (match slo_arg with
    | Some s when s <= 0. ->
      prerr_endline "drqos_cli: --slo must be positive";
      exit 2
    | _ -> ());
    let obs = Obs.create ~metrics:(Metrics.create ()) () in
    let workers = Array.make (max 1 jobs) None in
    let tracing = trace_out <> None in
    (* Per-operation cells for the client latency log.  Worker [w] owns
       indices [w, w+workers, ...] (the open-loop split), so each cell
       is written by exactly one domain and the join orders the writes
       before our reads. *)
    let verbs = Array.make requests "" in
    let latencies = Array.make requests (-1.) in
    let g0 = Gc.quick_stat () in
    let report =
      Sweep.open_loop ~jobs ~obs ~timer:"loadgen.latency" ~arrivals:schedule
        ~on_complete:(fun i latency -> latencies.(i) <- latency)
        ~worker:(fun w ->
          let state =
            {
              Loadgen.client = Serve_client.connect ~retries:100 addr;
              rng = Prng.create (seed + (1000 * (w + 1)));
              own = [];
              own_n = 0;
              failed = [];
              errors = 0;
              stale = 0;
              rejected = 0;
              trace = None;
            }
          in
          workers.(w) <- Some state;
          state)
        ~finish:(fun w ->
          (* Leave the daemon healthy for the next client: repair what
             we broke, then hang up. *)
          w.Loadgen.trace <- None;
          List.iter
            (fun e ->
              ignore (Serve_client.request w.Loadgen.client (Serve_proto.Repair { edge = e })))
            w.Loadgen.failed;
          Serve_client.close w.Loadgen.client)
        (fun _ w i ->
          if tracing then
            w.Loadgen.trace <-
              Some { Reqtrace.rid = i; t_sched = schedule.(i) };
          verbs.(i) <-
            Loadgen.step ~nodes
              ~target:(max 1 (live_target / max 1 jobs))
              ~fail_edges w i)
    in
    let g1 = Gc.quick_stat () in
    let sum f =
      Array.fold_left
        (fun acc -> function Some w -> acc + f w | None -> acc)
        0 workers
    in
    let errors = sum (fun w -> w.Loadgen.errors) in
    let stale = sum (fun w -> w.Loadgen.stale) in
    let rejected = sum (fun w -> w.Loadgen.rejected) in
    let tm = Metrics.timer (Obs.metrics obs) "loadgen.latency" in
    let q p = Metrics.timer_quantile tm p in
    let p50 = q 0.5 and p95 = q 0.95 and p99 = q 0.99 in
    let p999 = q 0.999 and lat_max = Metrics.timer_max tm in
    Printf.printf
      "replayed %d requests in %.2fs (%.0f rps offered, %.0f achieved)\n"
      report.Sweep.sent report.Sweep.wall_s rate report.Sweep.achieved_rps;
    Printf.printf
      "latency  p50 %.6fs  p95 %.6fs  p99 %.6fs  p99.9 %.6fs  max %.6fs  \
       (max lag %.4fs)\n"
      p50 p95 p99 p999 lat_max report.Sweep.max_lag_s;
    Printf.printf "rejected %d  stale %d  errors %d\n" rejected stale errors;
    let slo_good, slo_bad =
      match slo_arg with
      | None -> (0, 0)
      | Some s ->
        let good = ref 0 and bad = ref 0 in
        Array.iter
          (fun l -> if l >= 0. then incr (if l <= s then good else bad))
          latencies;
        Printf.printf "slo %.6fs: %d good / %d bad (%.4f%% bad)\n" s !good !bad
          (100. *. float_of_int !bad
          /. float_of_int (max 1 (!good + !bad)));
        (!good, !bad)
    in
    (* The client-side request log: one req_client line per operation,
       rid = schedule index — what [drqos_cli latency] joins against the
       daemon's req_begin/req_stage/req_end records. *)
    (match trace_out with
    | None -> ()
    | Some path ->
      let oc = open_out_or_exit path in
      Array.iteri
        (fun i verb ->
          if verb <> "" && latencies.(i) >= 0. then begin
            Jsonx.output oc
              (Trace.to_json ~time:(float_of_int i)
                 (Trace.Req_client
                    {
                      rid = i;
                      verb;
                      sched_s = schedule.(i);
                      latency_s = latencies.(i);
                    }));
            output_char oc '\n'
          end)
        verbs;
      close_out oc;
      Printf.printf "(client request log written to %s)\n" path);
    (* Pull the daemon's per-stage p99s for the perf record while it is
       still up — the shutdown below would race this fetch. *)
    let stage_p99s =
      if out_dir = None then []
      else
        match
          let c = Serve_client.connect addr in
          Fun.protect
            ~finally:(fun () -> Serve_client.close c)
            (fun () -> Serve_client.request c Serve_proto.Metrics)
        with
        | Serve_proto.Metrics_reply doc ->
          let p99 name =
            Option.bind (Jsonx.member "timers" doc) (fun timers ->
                Option.bind (Jsonx.member name timers) (fun t ->
                    Option.bind (Jsonx.member "p99_s" t) Jsonx.to_float))
          in
          List.filter_map
            (fun name -> Option.map (fun v -> (name, Jsonx.Float v)) (p99 name))
            (List.map Reqtrace.timer_name Reqtrace.all_stages @ [ "req.total" ])
        | _ -> []
        | exception _ -> []
    in
    (if shutdown then
       let c = Serve_client.connect addr in
       match Serve_client.request c Serve_proto.Shutdown with
       | Serve_proto.Shutting_down -> Serve_client.close c
       | _ ->
         prerr_endline "drqos_cli: daemon did not acknowledge shutdown";
         exit 1);
    (match out_dir with
    | None -> ()
    | Some dir ->
      (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ());
      let bench = Filename.concat dir "BENCH_serve.json" in
      let oc = open_out_or_exit bench in
      Jsonx.output oc
        (Jsonx.Obj
           [
             ("experiment", Jsonx.String "serve");
             ("scale", Jsonx.String (if quick then "quick" else "full"));
             ("requests", Jsonx.Int report.Sweep.sent);
             ("jobs", Jsonx.Int jobs);
             ("rate_rps", Jsonx.Float rate);
             ("live_target", Jsonx.Int live_target);
             ( "arrivals",
               Jsonx.String
                 (match arrivals with `Poisson -> "poisson" | `Bursty -> "bursty") );
             ("wall_s", Jsonx.Float report.Sweep.wall_s);
             ("achieved_rps", Jsonx.Float report.Sweep.achieved_rps);
             ("max_lag_s", Jsonx.Float report.Sweep.max_lag_s);
             ( "latency_s",
               Jsonx.Obj
                 [
                   ("p50", Jsonx.Float p50);
                   ("p95", Jsonx.Float p95);
                   ("p99", Jsonx.Float p99);
                   ("p999", Jsonx.Float p999);
                   ("max", Jsonx.Float lat_max);
                 ] );
             ("rejected", Jsonx.Int rejected);
             ("stale", Jsonx.Int stale);
             ("errors", Jsonx.Int errors);
             ("slo_good", Jsonx.Int slo_good);
             ("slo_bad", Jsonx.Int slo_bad);
             ("stage_p99_s", Jsonx.Obj stage_p99s);
             ( "gc",
               Jsonx.Obj
                 [
                   ( "minor_words",
                     Jsonx.Float (g1.Gc.minor_words -. g0.Gc.minor_words) );
                   ( "major_words",
                     Jsonx.Float (g1.Gc.major_words -. g0.Gc.major_words) );
                   ( "minor_collections",
                     Jsonx.Int (g1.Gc.minor_collections - g0.Gc.minor_collections)
                   );
                 ] );
           ]);
      output_char oc '\n';
      close_out oc;
      Printf.printf "(perf record written to %s)\n" bench;
      let dat = Filename.concat dir "serve.dat" in
      let oc = open_out_or_exit dat in
      Printf.fprintf oc "# quantile\tlatency_s\n";
      List.iter
        (fun (name, v) -> Printf.fprintf oc "%s\t%.9f\n" name v)
        [
          ("p50", p50); ("p95", p95); ("p99", p99); ("p999", p999);
          ("max", lat_max);
        ];
      close_out oc;
      Printf.printf "(percentile table written to %s)\n" dat);
    if errors > 0 then exit 1
  in
  let term =
    Term.(
      const run $ seed_arg $ nodes_arg $ socket_arg $ port_arg $ requests $ rate
      $ arrivals_arg $ jobs $ live_target $ fail_edges $ quick $ out_dir
      $ shutdown $ trace_out $ slo_arg)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Open-loop multicore load generator for a running $(b,drqos_cli \
          serve) daemon: replays a seeded Poisson or bursty arrival schedule \
          of admit/teardown/chqos (plus optional fail/repair injection) \
          across worker domains, measuring each operation from its \
          $(i,scheduled) arrival to completion on the monotonic clock — \
          coordinated-omission-safe percentiles off log-bucket timers.")
    term

(* --- latency: per-request tail anatomy --- *)

let latency_cmd =
  let traces =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:
            "JSONL trace files, concatenated in order: the daemon's \
             $(b,serve --trace) stream (req_begin/req_stage/req_end) and/or \
             the load generator's $(b,loadgen --trace) client log \
             (req_client).  Records join by rid.")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N"
          ~doc:
            "Show the N slowest completed requests with their full stage \
             breakdown (0 = none).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify trace consistency — every req_end has its req_begin, no \
             duplicate req_ends per rid, no negative stage or total \
             durations — and exit 1 on any violation (the verify.sh tracing \
             gate).")
  in
  let perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Export the completed requests as Chrome/Perfetto trace-event \
             JSON: one track per stage plus a network+queue residual track \
             for joined requests, requests laid end-to-end.")
  in
  let run traces top check perfetto =
    let load path =
      try
        In_channel.with_open_text path (fun ic ->
            List.rev
              (Jsonx.fold_lines ic ~init:[] ~f:(fun acc ~line doc ->
                   match Trace.of_json doc with
                   | Ok ev -> ev :: acc
                   | Error message -> raise (Jsonx.Line_error { line; message }))))
      with
      | Sys_error msg ->
        Printf.eprintf "drqos_cli: %s\n" msg;
        exit 1
      | Jsonx.Line_error { line; message } ->
        Printf.eprintf "drqos_cli: %s:%d: %s\n" path line message;
        exit 1
    in
    let a = Analysis.of_events (List.concat_map load traces) in
    let reqs = Analysis.requests a in
    let complete = List.filter (fun r -> r.Analysis.rq_complete) reqs in
    let joined =
      List.filter (fun r -> r.Analysis.rq_client <> None) complete
    in
    Printf.printf
      "requests: %d rids, %d complete server-side, %d joined with a client \
       record\n"
      (List.length reqs) (List.length complete) (List.length joined);
    (match Analysis.stage_anatomy a with
    | [] -> ()
    | stats ->
      Printf.printf "stage anatomy (completed requests; tail = totals >= p99):\n";
      Printf.printf "  %-14s %8s %12s %12s %12s %12s %10s\n" "stage" "count"
        "total_s" "p50_s" "p95_s" "p99_s" "tail_share";
      List.iter
        (fun s ->
          Printf.printf "  %-14s %8d %12.6f %12.6f %12.6f %12.6f %9.1f%%\n"
            s.Analysis.st_stage s.Analysis.st_count s.Analysis.st_total_s
            s.Analysis.st_p50_s s.Analysis.st_p95_s s.Analysis.st_p99_s
            (100. *. s.Analysis.st_tail_share))
        stats);
    (match joined with
    | [] -> ()
    | js ->
      (* Client latency minus server stage sum is network + socket-queue
         time (the residual bucket).  Stages + residual tile the client
         latency exactly unless the stage sum exceeds what the client
         clocked — an over-attributed request, which would mean the
         decomposition is inconsistent — so the attribution fraction is
         latency / max(latency, stage sum), 100% when consistent. *)
      let n = List.length js in
      let client_sum, server_sum, attr_denom, attr95, over =
        List.fold_left
          (fun (cs, ss, ad, a95, ov) r ->
            match r.Analysis.rq_client with
            | Some (_, _, latency) when latency > 0. ->
              let sum = r.Analysis.rq_total_s in
              let explained = Float.min latency sum in
              let frac = latency /. Float.max latency sum in
              ( cs +. latency,
                ss +. explained,
                ad +. Float.max latency sum,
                (a95 + if frac >= 0.95 then 1 else 0),
                ov + if sum > latency then 1 else 0 )
            | _ -> (cs, ss, ad, a95, ov))
          (0., 0., 0., 0, 0) js
      in
      if client_sum > 0. then begin
        Printf.printf
          "join: %d requests; stages + network residual attribute %.2f%% of \
           client-observed latency\n"
          n
          (100. *. client_sum /. attr_denom);
        Printf.printf
          "      %.3f%% of requests are >=95%% attributed; %d over-attributed \
           (stage sum past the client clock: scheduler preemption at the \
           reply write)\n"
          (100. *. float_of_int attr95 /. float_of_int n)
          over;
        Printf.printf
          "      server stages explain %.2f%%; mean network+queue residual \
           %.6fs\n"
          (100. *. server_sum /. client_sum)
          ((client_sum -. server_sum) /. float_of_int n)
      end);
    (if top > 0 then
       let slowest =
         List.sort
           (fun x y -> compare y.Analysis.rq_total_s x.Analysis.rq_total_s)
           complete
       in
       let rec take k = function
         | x :: rest when k > 0 -> x :: take (k - 1) rest
         | _ -> []
       in
       match take top slowest with
       | [] -> ()
       | rows ->
         Printf.printf "slowest requests (by server stage sum):\n";
         Printf.printf "  %-10s %-10s %-3s %12s %12s  %s\n" "rid" "verb" "ok"
           "total_s" "client_s" "stages";
         List.iter
           (fun r ->
             let client_s =
               match r.Analysis.rq_client with
               | Some (_, _, latency) -> Printf.sprintf "%12.6f" latency
               | None -> Printf.sprintf "%12s" "-"
             in
             let stages =
               String.concat " "
                 (List.map
                    (fun (name, s) -> Printf.sprintf "%s=%.6f" name s)
                    r.Analysis.rq_stages)
             in
             Printf.printf "  %-10d %-10s %-3s %12.6f %s  %s\n"
               r.Analysis.rq_rid r.Analysis.rq_verb
               (if r.Analysis.rq_ok then "ok" else "err")
               r.Analysis.rq_total_s client_s stages)
           rows);
    (match perfetto with
    | None -> ()
    | Some path ->
      let oc = open_out_or_exit path in
      Jsonx.output oc (Analysis.requests_to_perfetto a);
      output_char oc '\n';
      close_out oc;
      Printf.printf "perfetto request anatomy written to %s\n" path);
    if check then begin
      match Analysis.request_check a with
      | [] -> Printf.printf "check: ok\n"
      | violations ->
        List.iter (fun v -> Printf.eprintf "drqos_cli: check: %s\n" v) violations;
        exit 1
    end
  in
  let term = Term.(const run $ traces $ top $ check $ perfetto) in
  Cmd.v
    (Cmd.info "latency"
       ~doc:
         "Per-request tail-latency anatomy from recorded request traces: \
          join the daemon's req_begin/req_stage/req_end records with the \
          load generator's req_client log by rid, report per-stage \
          percentiles and each stage's share of the tail mass, list the \
          slowest requests, check trace consistency, and export a \
          per-stage Perfetto view.")
    term

let () =
  let doc = "dependable real-time communication with elastic QoS (Kim & Shin, DSN 2001)" in
  let info = Cmd.info "drqos_cli" ~version:"1.0.0" ~doc in
  (* Repo convention (PR 1/PR 2, bench/main and drqos_lint alike): usage
     errors — unknown sub-command, unknown flag, malformed argument —
     exit 2 with usage on stderr, not cmdliner's default 124. *)
  let code =
    Cmd.eval
      (Cmd.group info
         [
           run_cmd; sweep_cmd; topo_cmd; chain_cmd; analyze_cmd; perfdiff_cmd;
           fuzz_cmd; top_cmd; serve_cmd; loadgen_cmd; latency_cmd;
         ])
  in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
