(* Typed-AST linter for the drqos tree.

     drqos_lint _build/default/lib _build/default/bin --baseline lint.baseline

   Walks the .cmt files dune already produced, runs the project rule set
   (R1 float equality, R2 closed-variant catch-alls, R3 partial stdlib
   functions, R4 swallowed exceptions, R5 stray stdout prints, R6 global
   Obs state inside Sweep.map workers, R7 cross-domain races, R8
   event-loop blocking, R9 wall-clock taint) and exits 0 only when every
   finding is covered by a justified baseline entry and no baseline
   entry is stale.

   Exit codes follow the repo convention: 0 clean, 1 findings (or stale
   suppressions), 2 usage/input error. *)

let usage oc =
  output_string oc
    "usage: drqos_lint [OPTIONS] ROOT...\n\
     \n\
     Lint the typed ASTs (.cmt files) under each ROOT (a directory, e.g.\n\
     _build/default/lib, or a single .cmt file).\n\
     \n\
     options:\n\
     \  --rules R1,R2,...      enable only these rules (default: all)\n\
     \  --protect T1,T2,...    closed variant types guarded by R2\n\
     \                         (default: Trace.event,Op.t)\n\
     \  --lib-prefix PREFIX    source-path prefix treated as library code\n\
     \                         for R3/R5 (default: lib/)\n\
     \  --r8-roots F1,F2,...   event-loop dispatch entry points for R8,\n\
     \                         as Module.name (default:\n\
     \                         Serve_server.handle_line,Lintfix_evloop.dispatch)\n\
     \  --summary-cache FILE   cache interprocedural summaries in FILE,\n\
     \                         keyed by .cmt digest; with only R6-R9\n\
     \                         enabled, unchanged units are not reopened\n\
     \  --baseline FILE        suppress findings listed in FILE; stale\n\
     \                         entries fail the gate\n\
     \  --write-baseline FILE  write the current findings to FILE as\n\
     \                         baseline entries needing justification\n\
     \  --format text|json|github\n\
     \                         report format (default: text); github\n\
     \                         emits ::error/::warning annotations\n\
     \  --list-rules           print the rule catalogue and exit\n\
     \  --help                 this message\n"

let die_usage msg =
  prerr_endline ("drqos_lint: " ^ msg);
  usage stderr;
  exit 2

let parse_rules csv =
  List.map
    (fun name ->
      match Lint.rule_of_name (String.trim name) with
      | Some r -> r
      | None -> die_usage (Printf.sprintf "unknown rule id %S" name))
    (String.split_on_char ',' csv)

let () =
  let roots = ref [] in
  let rules = ref Lint.all_rules in
  let protect = ref Lint_driver.default_protect in
  let lib_prefix = ref "lib/" in
  let r8_roots = ref Lint_flow.default_r8_roots in
  let summary_cache = ref None in
  let baseline = ref None in
  let write_baseline = ref None in
  let format = ref `Text in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ ->
      usage stdout;
      exit 0
    | "--list-rules" :: _ ->
      List.iter
        (fun r ->
          Printf.printf "%s (%s): %s\n" (Lint.rule_name r)
            (Lint.severity_name (Lint.severity r))
            (Lint.describe r))
        Lint.all_rules;
      exit 0
    | "--rules" :: csv :: rest ->
      rules := parse_rules csv;
      parse rest
    | "--protect" :: csv :: rest ->
      protect := List.map String.trim (String.split_on_char ',' csv);
      parse rest
    | "--lib-prefix" :: p :: rest ->
      lib_prefix := p;
      parse rest
    | "--r8-roots" :: csv :: rest ->
      r8_roots := List.map String.trim (String.split_on_char ',' csv);
      parse rest
    | "--summary-cache" :: f :: rest ->
      summary_cache := Some f;
      parse rest
    | "--baseline" :: f :: rest ->
      baseline := Some f;
      parse rest
    | "--write-baseline" :: f :: rest ->
      write_baseline := Some f;
      parse rest
    | "--format" :: "json" :: rest ->
      format := `Json;
      parse rest
    | "--format" :: "github" :: rest ->
      format := `Github;
      parse rest
    | "--format" :: "text" :: rest ->
      format := `Text;
      parse rest
    | "--format" :: other :: _ ->
      die_usage
        (Printf.sprintf "unknown format %S (expected text, json or github)"
           other)
    | [ ("--rules" | "--protect" | "--lib-prefix" | "--r8-roots"
        | "--summary-cache" | "--baseline" | "--write-baseline" | "--format")
        as flag ] ->
      die_usage (Printf.sprintf "%s needs an argument" flag)
    | arg :: rest ->
      if String.length arg > 0 && arg.[0] = '-' then
        die_usage (Printf.sprintf "unknown option %S" arg)
      else begin
        roots := arg :: !roots;
        parse rest
      end
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then die_usage "no roots given";
  let config =
    {
      Lint_driver.roots;
      rules = !rules;
      protect = !protect;
      lib_prefix = !lib_prefix;
      r8_roots = !r8_roots;
      summary_cache = !summary_cache;
    }
  in
  match Lint_driver.run config with
  | Error msg ->
    prerr_endline ("drqos_lint: " ^ msg);
    exit 2
  | Ok findings -> (
    match !write_baseline with
    | Some path ->
      let oc = open_out path in
      output_string oc
        "# drqos_lint baseline: <rule> <file>:<line> <justification>\n\
         # Replace every TODO with a real justification before committing.\n";
      List.iter
        (fun f ->
          output_string oc
            (Lint_baseline.entry_to_string
               (Lint_baseline.of_finding ~reason:"TODO: justify" f));
          output_char oc '\n')
        findings;
      close_out oc;
      Printf.printf "wrote %d baseline entries to %s\n" (List.length findings)
        path
    | None -> (
      let entries =
        match !baseline with
        | None -> []
        | Some path -> (
          match Lint_baseline.load path with
          | Ok entries -> entries
          | Error msg ->
            prerr_endline ("drqos_lint: baseline: " ^ msg);
            exit 2)
      in
      let { Lint_baseline.kept; suppressed; stale } =
        Lint_baseline.apply entries findings
      in
      let clean = kept = [] && stale = [] in
      (match !format with
      | `Json ->
        print_endline
          (Jsonx.to_string
             (Lint_driver.report_json ~findings:kept ~suppressed ~stale))
      | `Github ->
        List.iter
          (fun f -> print_endline (Lint_driver.github_annotation f))
          kept;
        List.iter
          (fun e ->
            print_endline
              (Printf.sprintf
                 "::error title=stale-baseline::stale baseline entry \
                  (matches no finding): %s"
                 (Lint_baseline.entry_to_string e)))
          stale
      | `Text ->
        List.iter (fun f -> print_endline (Lint.finding_to_string f)) kept;
        List.iter
          (fun e ->
            print_endline
              ("stale baseline entry (matches no finding): "
              ^ Lint_baseline.entry_to_string e))
          stale;
        Printf.printf "%d finding%s (%d suppressed by baseline), %d stale \
                       baseline entr%s\n"
          (List.length kept)
          (if List.length kept = 1 then "" else "s")
          suppressed (List.length stale)
          (if List.length stale = 1 then "y" else "ies"));
      exit (if clean then 0 else 1)))
