(* Video streaming over elastic DR-connections — the workload the paper's
   introduction motivates: a video service needs at least 100 Kbps for
   recognisable continuous images and 500 Kbps for high quality.

   Two customer classes share the paper's 100-node network: premium
   streams (utility 4) and basic streams (utility 1), under the
   coefficient (proportional) adaptation policy.  We churn the system in
   steady state and report the quality level each class actually enjoys,
   plus what the analytic model predicts for the blended population.

     dune exec examples/video_service.exe *)

let printf = Printf.printf

let quality_of_kbps k =
  if k >= 500. then "high definition"
  else if k >= 300. then "standard definition"
  else if k >= 200. then "low definition"
  else "recognisable images"

let () =
  let graph = Waxman.generate (Prng.create 9) (Waxman.paper_spec ~nodes:100) in
  printf "network: %s\n" (Format.asprintf "%a" Graph.pp graph);
  let net = Net_state.create ~capacity:(Bandwidth.mbps 4) graph in
  let config = Drcomm.Config.make ~policy:Policy.proportional () in
  let service = Drcomm.create ~config net in
  let premium = Qos.make ~b_min:100 ~b_max:500 ~increment:50 ~utility:4. () in
  let basic = Qos.make ~b_min:100 ~b_max:500 ~increment:50 ~utility:1. () in

  (* Offer 1200 streams, 1 premium for every 3 basic. *)
  let rng = Prng.create 77 in
  let premium_ids = ref [] and basic_ids = ref [] and rejected = ref 0 in
  for i = 1 to 1200 do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count graph) in
    let is_premium = i mod 4 = 0 in
    let qos = if is_premium then premium else basic in
    match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos with
    | Drcomm.Admitted (id, _) ->
      if is_premium then premium_ids := id :: !premium_ids
      else basic_ids := id :: !basic_ids
    | Drcomm.Rejected _ -> incr rejected
  done;
  printf "offered 1200 streams: %d carried (%d premium, %d basic), %d rejected\n"
    (Drcomm.count service) (List.length !premium_ids) (List.length !basic_ids)
    !rejected;

  (* Churn: viewers leave and join; premium share maintained. *)
  let est = Estimator.create ~levels:(Qos.levels basic) in
  for i = 1 to 800 do
    if i mod 2 = 0 then begin
      match Drcomm.active_channels service with
      | [] -> ()
      | ids ->
        let id = Prng.pick_list rng ids in
        let report = Drcomm.terminate service id in
        Estimator.observe_termination est report;
        let other x = not (Drcomm.Channel_id.equal x id) in
        premium_ids := List.filter other !premium_ids;
        basic_ids := List.filter other !basic_ids
    end
    else begin
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count graph) in
      let is_premium = i mod 8 = 1 in
      let qos = if is_premium then premium else basic in
      match Drcomm.admit service ~src ~dst ~qos with
      | Drcomm.Admitted (id, report) ->
        Estimator.observe_arrival est report;
        if is_premium then premium_ids := id :: !premium_ids
        else basic_ids := id :: !basic_ids
      | Drcomm.Rejected _ -> incr rejected
    end
  done;

  let class_stats label ids =
    let ids = List.filter (Drcomm.mem service) ids in
    let n = List.length ids in
    if n = 0 then printf "%-8s no streams\n" label
    else begin
      let total =
        List.fold_left (fun acc id -> acc + Drcomm.reserved_bandwidth service id) 0 ids
      in
      let avg = float_of_int total /. float_of_int n in
      printf "%-8s %4d streams, average %3.0f Kbps  (%s)\n" label n avg
        (quality_of_kbps avg)
    end
  in
  printf "\nsteady-state viewing quality by class:\n";
  class_stats "premium" !premium_ids;
  class_stats "basic" !basic_ids;

  (* The paper's analysis side: solve the measured Markov chain and
     compare with the blended simulation average. *)
  let params = Model.params_of_estimator ~lambda:0.001 ~mu:0.001 ~gamma:0. est in
  let predicted = Model.average_bandwidth_regularized params ~qos:basic in
  printf "\nmeasured P_f = %.3f, P_s = %.3f over %d churn arrivals\n"
    (Estimator.p_f est) (Estimator.p_s est) (Estimator.arrivals est);
  printf "Markov-model prediction of the blended average: %.0f Kbps\n" predicted;
  printf "simulation blended average:                     %.0f Kbps\n"
    (Drcomm.average_bandwidth service);
  Drcomm.check_invariants service
