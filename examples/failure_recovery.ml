(* Failure recovery timeline for a reliability-critical service — the
   remote-medical-service scenario of the paper's introduction, driven
   through the discrete-event engine.

   A hospital link (connection 0) and background traffic share the
   network.  We schedule link failures and repairs on the simulation
   clock and log, event by event, what happens to the hospital's
   connection: elastic retreats, backup activation, re-protection.

     dune exec examples/failure_recovery.exe *)

let printf = Printf.printf

let () =
  let graph = Waxman.generate (Prng.create 5) (Waxman.spec ~nodes:40 ~alpha:0.45 ~beta:0.3 ()) in
  let net = Net_state.create ~capacity:(Bandwidth.mbps 5) graph in
  let service = Drcomm.create net in
  let qos = Qos.paper_spec ~increment:50 in

  (* The critical connection. *)
  let hospital =
    match Drcomm.admit service ~src:0 ~dst:20 ~qos with
    | Drcomm.Admitted (id, _) -> id
    | Drcomm.Rejected _ -> failwith "hospital connection rejected"
  in
  (* Background load. *)
  let rng = Prng.create 11 in
  for _ = 1 to 250 do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count graph) in
    ignore (Drcomm.admit ~want_indirect:false service ~src ~dst ~qos)
  done;
  printf "t=0.0  hospital connection %d up: %d-hop primary, %s, %d Kbps\n"
    (Drcomm.Channel_id.to_int hospital)
    (List.length (Drcomm.primary_links service hospital))
    (if Drcomm.has_backup service hospital then "protected by backup" else "UNPROTECTED")
    (Drcomm.reserved_bandwidth service hospital);

  let engine = Engine.create () in
  let status t =
    if Drcomm.mem service hospital then
      printf "t=%-4.1f hospital: %d Kbps over %d hops, %s\n" t
        (Drcomm.reserved_bandwidth service hospital)
        (List.length (Drcomm.primary_links service hospital))
        (if Drcomm.has_backup service hospital then "protected" else "unprotected")
    else printf "t=%-4.1f hospital: CONNECTION LOST\n" t
  in

  (* Fail the hospital's first primary link at t=10, repair it at t=40;
     fail another of its (new) primary links at t=60. *)
  let fail_first_primary_edge engine =
    let t = Engine.now engine in
    if Drcomm.mem service hospital then begin
      let e = Dirlink.edge (List.hd (Drcomm.primary_links service hospital)) in
      let a, b = Graph.endpoints graph e in
      printf "t=%-4.1f *** link %d-%d fails (persistent fault: cable cut) ***\n" t a b;
      let report = Drcomm.fail_edge service e in
      List.iter
        (fun r ->
          if Drcomm.Channel_id.equal r.Drcomm.victim hospital then
            match r.Drcomm.outcome with
            | `Switched_to_backup fresh ->
              printf "t=%-4.1f hospital switched to backup channel%s\n" t
                (if fresh then "; new backup established" else "; running unprotected")
            | `Dropped -> printf "t=%-4.1f hospital DROPPED\n" t
            | `Restored _ -> printf "t=%-4.1f hospital restored from scratch\n" t
            | `Backup_lost _ -> ()
          else
            match r.Drcomm.outcome with
            | `Dropped ->
              printf "t=%-4.1f background connection %d dropped\n" t
                (Drcomm.Channel_id.to_int r.Drcomm.victim)
            | _ -> ())
        report.Drcomm.recoveries;
      (* Remember which edge to repair later. *)
      ignore
        (Engine.schedule engine ~delay:30. (fun engine ->
             printf "t=%-4.1f *** link %d-%d repaired ***\n" (Engine.now engine) a b;
             Drcomm.repair_edge service e;
             status (Engine.now engine)))
    end;
    status t
  in
  ignore (Engine.schedule engine ~delay:10. fail_first_primary_edge);
  ignore (Engine.schedule engine ~delay:60. fail_first_primary_edge);
  ignore (Engine.schedule engine ~delay:25. (fun e -> status (Engine.now e)));
  ignore (Engine.schedule engine ~delay:80. (fun e -> status (Engine.now e)));
  ignore (Engine.run engine);

  printf "\nfinal state: %d connections, %d dropped during the incident window\n"
    (Drcomm.count service)
    (Drcomm.dropped_connections service);
  Drcomm.check_invariants service
