(* The two phases of a real-time channel, end to end (§2.1.1): off-line
   establishment (admission, elastic reservation, backup) followed by
   run-time message scheduling (token-bucket sources, per-link EDF,
   end-to-end deadlines) — over the same network state.

   We establish a population of DR-connections, then stream packets over
   a few of them at exactly their reserved rates, plus one rogue flow
   that exceeds its reservation, and measure delays and misses.

     dune exec examples/packet_delay.exe *)

let printf = Printf.printf

let () =
  (* Phase 1: establishment. *)
  let graph = Waxman.generate (Prng.create 3) (Waxman.spec ~nodes:40 ~alpha:0.45 ~beta:0.3 ()) in
  let capacity = Bandwidth.mbps 2 in
  let net = Net_state.create ~capacity graph in
  let service = Drcomm.create net in
  let qos = Qos.paper_spec ~increment:50 in
  let rng = Prng.create 8 in
  let ids = ref [] in
  for _ = 1 to 300 do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count graph) in
    match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos with
    | Drcomm.Admitted (id, _) -> ids := id :: !ids
    | Drcomm.Rejected _ -> ()
  done;
  printf "established %d DR-connections (avg %.0f Kbps reserved)\n"
    (Drcomm.count service)
    (Drcomm.average_bandwidth service);

  (* Phase 2: run-time.  Stream packets over five connections at their
     reserved rates. *)
  let engine = Engine.create () in
  let sim = Netsim.create ~propagation_delay:0.0005 engine graph ~rate_of:(fun _ -> capacity) in
  let horizon = 5.0 in
  let chosen = List.filteri (fun i _ -> i < 5) !ids in
  let flows =
    List.map
      (fun id ->
        let reserved = Drcomm.reserved_bandwidth service id in
        let spec = Traffic_spec.make ~rate:reserved ~burst_bits:4000 ~packet_bits:2000 () in
        let fid =
          Netsim.add_flow sim
            ~path:(Drcomm.primary_links service id)
            ~spec ~deadline:0.1 ~stop:horizon ()
        in
        (id, reserved, fid))
      chosen
  in
  (* A rogue source pushing 4x its reservation down the same path as the
     first connection — once unpoliced, once policed at ingress to its
     contract rate. *)
  let rogue_victim, rogue_path, rogue_rate =
    match flows with
    | (id, reserved, _) :: _ -> (id, Drcomm.primary_links service id, reserved)
    | [] -> assert false
  in
  let rogue_unpoliced =
    Netsim.add_flow sim ~path:rogue_path
      ~spec:(Traffic_spec.make ~rate:(4 * rogue_rate) ~burst_bits:16000 ~packet_bits:2000 ())
      ~deadline:0.02 ~stop:horizon ()
  in
  ignore (Engine.run ~until:(horizon +. 2.) engine);

  let show label fid extra =
    let st = Netsim.stats sim fid in
    printf "%8s %9s %6d %6d %7d %9.2f ms %9.2f ms\n" label extra st.Netsim.sent
      st.Netsim.delivered st.Netsim.missed
      (1000. *. Stats.Welford.mean st.Netsim.delay)
      (1000. *. st.Netsim.worst_delay)
  in
  printf "\n--- with an UNPOLICED rogue (4x its reservation) ---\n";
  printf "%8s %9s %6s %6s %7s %12s %12s\n" "conn" "reserved" "sent" "deliv" "missed"
    "mean delay" "worst";
  List.iter
    (fun (id, reserved, fid) ->
      show
        (string_of_int (Drcomm.Channel_id.to_int id))
        fid
        (Printf.sprintf "%d K" reserved))
    flows;
  show "rogue" rogue_unpoliced "4x";
  printf
    "note how connection %d — sharing the rogue's links — misses alongside it:\n\
     reservations alone do not protect the data plane from a non-conforming\n\
     source; ingress policing does.\n"
    (Drcomm.Channel_id.to_int rogue_victim);

  (* Same experiment, rogue policed to its contracted rate. *)
  let engine2 = Engine.create () in
  let sim2 = Netsim.create ~propagation_delay:0.0005 engine2 graph ~rate_of:(fun _ -> capacity) in
  let flows2 =
    List.map
      (fun (id, reserved, _) ->
        let spec = Traffic_spec.make ~rate:reserved ~burst_bits:4000 ~packet_bits:2000 () in
        ( id,
          reserved,
          Netsim.add_flow sim2 ~path:(Drcomm.primary_links service id) ~spec
            ~deadline:0.1 ~stop:horizon () ))
      flows
  in
  (* The policer caps the rogue at its reservation: the token bucket *is*
     the policing device (§2.1.1's traffic contract). *)
  let rogue_policed =
    Netsim.add_flow sim2 ~path:rogue_path
      ~spec:(Traffic_spec.make ~rate:rogue_rate ~burst_bits:4000 ~packet_bits:2000 ())
      ~deadline:0.02 ~stop:horizon ()
  in
  ignore (Engine.run ~until:(horizon +. 2.) engine2);
  printf "\n--- with the rogue POLICED to its contract ---\n";
  printf "%8s %9s %6s %6s %7s %12s %12s\n" "conn" "reserved" "sent" "deliv" "missed"
    "mean delay" "worst";
  List.iter
    (fun (id, reserved, fid) ->
      let st = Netsim.stats sim2 fid in
      printf "%8d %6d K %6d %6d %7d %9.2f ms %9.2f ms\n"
        (Drcomm.Channel_id.to_int id)
        reserved st.Netsim.sent
        st.Netsim.delivered st.Netsim.missed
        (1000. *. Stats.Welford.mean st.Netsim.delay)
        (1000. *. st.Netsim.worst_delay))
    flows2;
  let st = Netsim.stats sim2 rogue_policed in
  printf "%8s %9s %6d %6d %7d %9.2f ms %9.2f ms\n" "rogue" "policed" st.Netsim.sent
    st.Netsim.delivered st.Netsim.missed
    (1000. *. Stats.Welford.mean st.Netsim.delay)
    (1000. *. st.Netsim.worst_delay);
  printf
    "\npoliced to the contract, everyone — including the rogue's own packets —\n\
     meets deadline: the reservation + token-bucket pair is what makes the\n\
     off-line guarantees hold at run time.\n"
