(* Capacity planning with the analytic model — the use the paper names in
   §1: "performance evaluation ... enables prediction of the behavior of
   an application on a given network and the future planning of the
   network".

   A provider wants every DR-connection to average at least 300 Kbps.
   How many connections can the 100-node network carry?  We sweep the
   offered load, and at each point compare the (cheap) Markov prediction
   against the (expensive) detailed simulation — the planning workflow
   the analytic model exists for.

     dune exec examples/capacity_planning.exe *)

let printf = Printf.printf

let sla_kbps = 300.

let () =
  printf "SLA target: every connection averages >= %.0f Kbps\n\n" sla_kbps;
  printf "%8s %8s %12s %12s %8s\n" "offered" "carried" "markov Kbps" "sim Kbps" "SLA?";
  let knee = ref None in
  List.iter
    (fun offered ->
      let cfg =
        {
          Scenario.default with
          Scenario.offered;
          churn_events = 600;
          warmup_events = 150;
          seed = 4;
        }
      in
      let r = Scenario.run cfg in
      let ok = r.Scenario.model_avg_bandwidth >= sla_kbps in
      if (not ok) && !knee = None then knee := Some offered;
      printf "%8d %8d %12.0f %12.0f %8s\n" offered r.Scenario.carried_initial
        r.Scenario.model_avg_bandwidth r.Scenario.sim_avg_bandwidth
        (if ok then "yes" else "NO"))
    [ 500; 1000; 1500; 2000; 2500; 3000 ];
  (match !knee with
  | Some offered ->
    printf
      "\nplanning verdict: the SLA breaks between %d and %d connections —\n\
       provision more capacity (or raise prices) before crossing that load.\n"
      (offered - 500) offered
  | None -> printf "\nplanning verdict: SLA holds across the whole sweep.\n");
  printf
    "\nnote: the Markov column comes from solving a 9-state chain with measured\n\
     parameters — the same verdicts as simulation at a fraction of the cost\n\
     once P_f/P_s/A/B/T are known for the network (the paper's §3.3 workflow).\n";

  (* The network-centric companion analysis (§3.2's other view): how many
     floor reservations fit one 10 Mbps link before blocking exceeds 1%?
     Classic Erlang-B, useful for per-link dimensioning. *)
  printf "\nper-link dimensioning (Erlang B, 100 Kbps floors on one 10 Mbps link):\n";
  printf "%14s %10s %10s\n" "offered load" "blocking" "servers for 1%";
  List.iter
    (fun a ->
      printf "%11.0f E %9.4f %15d\n" a
        (Erlang.erlang_b ~servers:100 ~offered_load:a)
        (Erlang.required_servers ~offered_load:a ~target_blocking:0.01))
    [ 60.; 80.; 100.; 120. ];

  (* And the confidence view: replicate the knee point across seeds. *)
  let knee_cfg =
    {
      Scenario.default with
      Scenario.offered = 2000;
      churn_events = 400;
      warmup_events = 100;
    }
  in
  let _, s = Scenario.run_replications ~seeds:[ 1; 2; 3 ] knee_cfg in
  printf "\nknee-point check across 3 topology replications:\n%s\n"
    (Format.asprintf "%a" Scenario.pp_summary s)
