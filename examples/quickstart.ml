(* Quickstart: the whole public API in sixty lines.

   Build a topology, start the DR-connection service, admit an elastic
   dependable connection, watch it stretch, squeeze it with a competitor,
   kill a link, and watch the backup take over.

     dune exec examples/quickstart.exe *)

let printf = Printf.printf

let () =
  (* 1. A topology: 30-node random graph in the style of the paper's
        evaluation (GT-ITM Waxman model), 10 Mbps links. *)
  let rng = Prng.create 2024 in
  let graph = Waxman.generate rng (Waxman.spec ~nodes:30 ~alpha:0.4 ~beta:0.25 ()) in
  printf "topology: %s\n" (Format.asprintf "%a" Graph.pp graph);
  let net = Net_state.create ~capacity:(Bandwidth.mbps 10) graph in
  let service = Drcomm.create net in

  (* 2. An elastic QoS contract: at least 100 Kbps, up to 500 Kbps in
        50 Kbps steps — the paper's video-service example. *)
  let qos = Qos.paper_spec ~increment:(Bandwidth.kbps 50) in
  printf "QoS contract: %s\n" (Format.asprintf "%a" Qos.pp qos);

  (* 3. Admit a dependable connection: one primary + one link-disjoint,
        multiplexed backup. *)
  let id =
    match Drcomm.admit service ~src:0 ~dst:17 ~qos with
    | Drcomm.Admitted (id, _) -> id
    | Drcomm.Rejected reason ->
      failwith
        (match reason with
        | Drcomm.No_primary_route -> "no route with enough bandwidth"
        | Drcomm.No_backup_route -> "no backup route")
  in
  printf "admitted connection %d: %d-hop primary, %s, reserving %s\n"
    (Drcomm.Channel_id.to_int id)
    (List.length (Drcomm.primary_links service id))
    (match Drcomm.backup_links service id with
    | Some b -> Printf.sprintf "%d-hop backup" (List.length b)
    | None -> "no backup")
    (Format.asprintf "%a" Bandwidth.pp (Drcomm.reserved_bandwidth service id));

  (* 4. Contention: admit competitors over the same region and watch the
        elastic level adapt (arrivals retreat sharing channels to their
        floors, then the water-filling shares the spare). *)
  let competitors =
    List.filter_map
      (fun dst ->
        match Drcomm.admit service ~src:0 ~dst ~qos with
        | Drcomm.Admitted (cid, _) -> Some cid
        | Drcomm.Rejected _ -> None)
      [ 17; 17; 17; 17 ]
  in
  printf "after %d competitors: connection %d now at %s (level %d of %d)\n"
    (List.length competitors)
    (Drcomm.Channel_id.to_int id)
    (Format.asprintf "%a" Bandwidth.pp (Drcomm.reserved_bandwidth service id))
    (Drcomm.level service id)
    (Qos.levels qos - 1);

  (* 5. Fault tolerance: fail the first edge of the primary path.  The
        passive backup activates instantly; extras on its links retreat. *)
  let failed_edge = Dirlink.edge (List.hd (Drcomm.primary_links service id)) in
  let report = Drcomm.fail_edge service failed_edge in
  List.iter
    (fun r ->
      let v = Drcomm.Channel_id.to_int r.Drcomm.victim in
      match r.Drcomm.outcome with
      | `Switched_to_backup fresh ->
        printf "connection %d switched to its backup%s\n" v
          (if fresh then " (and found a new backup)" else "")
      | `Dropped -> printf "connection %d dropped\n" v
      | `Restored _ -> printf "connection %d restored\n" v
      | `Backup_lost _ -> printf "connection %d lost its backup\n" v)
    report.Drcomm.recoveries;
  printf "connection %d alive: %b, now reserving %s\n"
    (Drcomm.Channel_id.to_int id)
    (Drcomm.mem service id)
    (Format.asprintf "%a" Bandwidth.pp (Drcomm.reserved_bandwidth service id));

  (* 6. Always-on self checks. *)
  Drcomm.check_invariants service;
  printf "network utilisation: %.1f%%; invariants OK\n"
    (100. *. Net_state.utilisation net)
